//! The determinism rule set (D1–D8) and the per-file token scan.
//!
//! Each rule guards one way a simulation run can silently stop being
//! bit-reproducible. The campaign runner's golden-run comparison and the
//! prefix-fork/snapshot-DAG optimisations are only sound when two runs with
//! the same seed are identical; these rules turn the known ways of losing
//! that property into CI failures. See `DESIGN.md` ("Determinism invariants
//! and the auditor") for the full rationale of each rule.
//!
//! This module owns the *textual* pass: rules that fire on identifiers and
//! short token sequences in a single file. The cross-file pass (aliased
//! re-exports resolved through the workspace use-graph) lives in
//! [`crate::usegraph`]; suppression (test regions, `allow(...)` waivers,
//! `host-region` markers) is applied by the orchestrator in [`crate`].

use crate::lexer::{Token, TokenKind};

/// One auditor rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case id, used in diagnostics and `allow(...)`.
    pub id: &'static str,
    /// One-line description of what the rule forbids.
    pub summary: &'static str,
    /// Why violating it breaks reproducibility.
    pub why: &'static str,
}

/// Rule id for D1.
pub const HASH_COLLECTIONS: &str = "hash-collections";
/// Rule id for D2.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule id for D3.
pub const AMBIENT_RNG: &str = "ambient-rng";
/// Rule id for D4.
pub const GLOBAL_STATE: &str = "global-state";
/// Rule id for D5.
pub const FLOAT_ORDERING: &str = "float-ordering";
/// Rule id for D6.
pub const INTERIOR_MUTABILITY: &str = "interior-mutability";
/// Rule id for D7.
pub const FLOAT_REDUCTION: &str = "float-reduction";
/// Rule id for D8.
pub const SIM_IO: &str = "sim-io";
/// Pseudo-rule id for malformed `comfase-lint:` annotations.
pub const BAD_ANNOTATION: &str = "bad-annotation";

/// The full rule set, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        id: HASH_COLLECTIONS,
        summary: "no `HashMap`/`HashSet` in simulation-state code (use `BTreeMap`/`BTreeSet`)",
        why: "hash iteration order is randomized per process, so any iteration \
              or serialization leaks nondeterminism into forked/snapshot runs",
    },
    Rule {
        id: WALL_CLOCK,
        summary: "no wall-clock reads (`Instant`, `SystemTime`) in simulation code",
        why: "simulation time must come from the DES kernel clock; wall-clock \
              values differ between runs and between fork points",
    },
    Rule {
        id: AMBIENT_RNG,
        summary: "no ambient randomness (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`)",
        why: "all randomness must flow from seeded `comfase-des` RNG streams so \
              equal seeds give bit-identical runs",
    },
    Rule {
        id: GLOBAL_STATE,
        summary: "no mutable globals (`static mut`, `lazy_static`, `OnceLock`) or `std::env` reads",
        why: "process-global state survives across experiments and forks, and \
              environment reads make results depend on the host shell",
    },
    Rule {
        id: FLOAT_ORDERING,
        summary: "no `.partial_cmp(..).unwrap()`/`.expect(..)` on floats (use `total_cmp`)",
        why: "partial comparisons panic or reorder on NaN; `total_cmp` gives a \
              deterministic total order for every input",
    },
    Rule {
        id: INTERIOR_MUTABILITY,
        summary: "no interior mutability (`Cell`, `RefCell`, `Mutex`, `RwLock`, atomics) in sim state",
        why: "interior mutability hides state changes from `Clone`-based \
              forking, and lock/atomic ordering depends on host scheduling — \
              both break snapshot/fork bit-identity",
    },
    Rule {
        id: FLOAT_REDUCTION,
        summary: "no float `.sum()`/`.fold()`/`.reduce()` over unordered iterators (`.values()`, par-iters)",
        why: "float addition is not associative, so a reduction over an \
              iterator whose order can change (map views, work-stealing \
              parallel iterators) gives different bits for the same inputs",
    },
    Rule {
        id: SIM_IO,
        summary: "no host I/O or threading (`std::fs`, `std::net`, `std::thread::spawn`, stdio) in sim code",
        why: "I/O timing and thread scheduling are host-dependent; simulation \
              code must be a pure function of seed and configuration, with all \
              I/O at the campaign-runner boundary",
    },
];

/// `true` if `id` names a real rule (annotations may only reference these).
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Maps a rule name back to its `'static` id (for cache deserialization).
pub fn static_rule_id(name: &str) -> Option<&'static str> {
    if name == BAD_ANNOTATION {
        return Some(BAD_ANNOTATION);
    }
    rule(name).map(|r| r.id)
}

/// One raw textual finding, before suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// The violated rule.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// `true` when a `// comfase-lint: host-region(...)` marker may exempt
    /// this finding (host-side supervision concerns: clocks, locks, I/O,
    /// environment reads). Sim-determinism findings are never host-exempt.
    pub host_ok: bool,
}

/// Identifiers that fire D1 wherever they appear in non-test code.
const HASH_IDENTS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "AHashMap",
    "AHashSet",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Identifiers that fire D2.
const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

/// Identifiers that fire D3.
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Identifiers that fire D4 on their own.
const GLOBAL_IDENTS: &[&str] = &["lazy_static", "OnceLock", "OnceCell", "LazyLock"];

/// `env::<fn>` calls that fire D4.
const ENV_FNS: &[&str] = &["var", "vars", "var_os", "vars_os", "args", "args_os"];

/// Identifiers that fire D6 wherever they appear. Bare `Cell` is *not*
/// listed: the workspace defines unrelated `Cell` types (a grid coordinate
/// in `comfase_wireless::grid`), so `std::cell::Cell` is only flagged by the
/// use-graph pass, which resolves what the name actually refers to.
const INTERIOR_IDENTS: &[&str] = &["RefCell", "UnsafeCell", "Mutex", "RwLock", "Condvar"];

/// Output macros that fire D8 (`name` followed by `!`).
const IO_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Iterator sources whose order is not the index order of a stable sequence:
/// map/set views (key order shifts with membership) and rayon-style parallel
/// iterators (work-stealing order).
const UNORDERED_SOURCES: &[&str] = &[
    "values",
    "into_values",
    "values_mut",
    "keys",
    "into_keys",
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_bridge",
    "par_chunks",
];

/// Reduction operators that are order-independent, exempting a
/// `fold`/`reduce` from D7 (`f64::max`, `f64::min`, `u64::max`, ...).
const ORDER_FREE_OPS: &[&str] = &["max", "min", "total_max", "total_min"];

/// Runs every textual rule over the token stream.
pub fn scan_tokens(tokens: &[Token]) -> Vec<RawFinding> {
    let mut raw = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        if HASH_IDENTS.contains(&text) {
            raw.push(RawFinding {
                rule: HASH_COLLECTIONS,
                line: t.line,
                message: format!(
                    "`{text}` in simulation-state code: iteration order is \
                     nondeterministic and breaks fork bit-identity; use \
                     `BTreeMap`/`BTreeSet`"
                ),
                host_ok: false,
            });
        } else if CLOCK_IDENTS.contains(&text) {
            raw.push(RawFinding {
                rule: WALL_CLOCK,
                line: t.line,
                message: format!(
                    "wall-clock `{text}` in simulation code: time must come \
                     from the DES kernel (`Simulator::now`), never the host clock"
                ),
                host_ok: true,
            });
        } else if RNG_IDENTS.contains(&text) {
            raw.push(RawFinding {
                rule: AMBIENT_RNG,
                line: t.line,
                message: format!(
                    "ambient randomness `{text}`: use a seeded \
                     `comfase_des::rng::RngStream` so equal seeds reproduce runs"
                ),
                host_ok: false,
            });
        } else if GLOBAL_IDENTS.contains(&text) {
            raw.push(RawFinding {
                rule: GLOBAL_STATE,
                line: t.line,
                message: format!(
                    "`{text}` creates process-global state that leaks across \
                     experiments; thread state through `World` instead"
                ),
                host_ok: false,
            });
        } else if INTERIOR_IDENTS.contains(&text)
            || (text.starts_with("Atomic") && text.len() > "Atomic".len())
        {
            raw.push(RawFinding {
                rule: INTERIOR_MUTABILITY,
                line: t.line,
                message: format!(
                    "interior mutability `{text}` in simulation-state code: \
                     shared mutation bypasses `Clone`-based forking and orders \
                     effects by host scheduling; own the state in `World` and \
                     mutate through `&mut`"
                ),
                host_ok: true,
            });
        } else if IO_MACROS.contains(&text) && tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            raw.push(RawFinding {
                rule: SIM_IO,
                line: t.line,
                message: format!(
                    "`{text}!` writes to host stdio from simulation code: \
                     route output through the recorder/report layer at the \
                     campaign boundary"
                ),
                host_ok: true,
            });
        } else if text == "static" && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            raw.push(RawFinding {
                rule: GLOBAL_STATE,
                line: t.line,
                message: "`static mut` is mutable global state; thread state through \
                 `World` instead"
                    .to_string(),
                host_ok: false,
            });
        } else if text == "env"
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && ENV_FNS.contains(&n.text.as_str()))
        {
            raw.push(RawFinding {
                rule: GLOBAL_STATE,
                line: t.line,
                message: format!(
                    "`env::{}` read in simulation code: results must not depend \
                     on the host environment; take configuration explicitly",
                    tokens[i + 2].text
                ),
                host_ok: true,
            });
        } else if text == "std"
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("env"))
            && !tokens.get(i + 3).is_some_and(|n| n.is_punct("::"))
        {
            // `use std::env;` (the qualified-call form is caught above).
            raw.push(RawFinding {
                rule: GLOBAL_STATE,
                line: t.line,
                message: "`std::env` in simulation code: results must not depend on the \
                 host environment"
                    .to_string(),
                host_ok: true,
            });
        } else if text == "rand" && tokens.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            if tokens.get(i + 2).is_some_and(|n| n.is_ident("random")) {
                raw.push(RawFinding {
                    rule: AMBIENT_RNG,
                    line: t.line,
                    message: "`rand::random` draws from the thread-local RNG; use a \
                     seeded `comfase_des::rng::RngStream`"
                        .to_string(),
                    host_ok: false,
                });
            }
        } else if text == "partial_cmp"
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            // D5: `.partial_cmp(..)` whose result is immediately unwrapped.
            if let Some(close) = matching_paren(tokens, i + 1) {
                if tokens.get(close + 1).is_some_and(|n| n.is_punct("."))
                    && tokens
                        .get(close + 2)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                {
                    raw.push(RawFinding {
                        rule: FLOAT_ORDERING,
                        line: t.line,
                        message: format!(
                            "`.partial_cmp(..).{}()` panics or misorders on NaN; \
                             use `f64::total_cmp` for a deterministic total order",
                            tokens[close + 2].text
                        ),
                        host_ok: false,
                    });
                }
            }
        } else if (text == "sum" || text == "product") && i > 0 && tokens[i - 1].is_punct(".") {
            check_sum_product(tokens, i, &mut raw);
        } else if (text == "fold" || text == "reduce")
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            check_fold_reduce(tokens, i, &mut raw);
        }
    }
    raw
}

/// D7 for `.sum()` / `.product()` terminals.
///
/// Fires over an unordered receiver unless the turbofish pins an *integer*
/// element type (integer addition is associative — adding e.g.
/// `.sum::<u64>()` is the sanctioned fix for map-view sums). A missing
/// turbofish is treated as suspect because the element type is invisible to
/// a lexical pass.
fn check_sum_product(tokens: &[Token], i: usize, raw: &mut Vec<RawFinding>) {
    let name = tokens[i].text.as_str();
    let mut k = i + 1;
    let mut has_turbofish = false;
    let mut float_turbofish = false;
    if tokens.get(k).is_some_and(|n| n.is_punct("::"))
        && tokens.get(k + 1).is_some_and(|n| n.is_punct("<"))
    {
        has_turbofish = true;
        let mut depth = 0i32;
        let mut m = k + 1;
        while let Some(t) = tokens.get(m) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("f32") || t.is_ident("f64") {
                float_turbofish = true;
            }
            m += 1;
        }
        k = m + 1;
    }
    if !tokens.get(k).is_some_and(|n| n.is_punct("(")) {
        return;
    }
    if has_turbofish && !float_turbofish {
        // Integer element type: associative, order-independent.
        return;
    }
    if !receiver_is_unordered(tokens, i) {
        return;
    }
    let message = if float_turbofish {
        format!(
            "float `.{name}::<f32|f64>()` over an unordered iterator: float \
             addition is not associative, so map-view or parallel order \
             changes the bits; collect into an index-ordered buffer first"
        )
    } else {
        format!(
            "`.{name}()` over an unordered iterator: if the element type is \
             a float the result depends on iteration order; pin an integer \
             element type (`.{name}::<u64>()`) or collect into an \
             index-ordered buffer first"
        )
    };
    raw.push(RawFinding {
        rule: FLOAT_REDUCTION,
        line: tokens[i].line,
        message,
        host_ok: false,
    });
}

/// D7 for `.fold(seed, op)` / `.reduce(op)` terminals.
///
/// `fold` fires when the seed is a float literal; `reduce` always reduces
/// pairwise in iterator order. Both are exempt when the operator is an
/// order-independent `max`/`min`.
fn check_fold_reduce(tokens: &[Token], i: usize, raw: &mut Vec<RawFinding>) {
    let name = tokens[i].text.as_str();
    let Some(close) = matching_paren(tokens, i + 1) else {
        return;
    };
    let args = &tokens[i + 2..close];
    let order_free = args
        .iter()
        .any(|t| t.kind == TokenKind::Ident && ORDER_FREE_OPS.contains(&t.text.as_str()));
    if order_free {
        return;
    }
    let fires = match name {
        "fold" => args.first().is_some_and(Token::is_float_literal),
        _ => true,
    };
    if !fires || !receiver_is_unordered(tokens, i) {
        return;
    }
    raw.push(RawFinding {
        rule: FLOAT_REDUCTION,
        line: tokens[i].line,
        message: format!(
            "float `.{name}(..)` over an unordered iterator: the reduction \
             order follows map-view or parallel scheduling order, so the \
             result bits are not reproducible; use an order-independent \
             operator (`max`/`min`) or an index-ordered buffer"
        ),
        host_ok: false,
    });
}

/// Walks the method chain feeding the terminal at `term` (`tokens[term]` is
/// the method name, `tokens[term - 1]` the `.`) backwards, returning `true`
/// if any source/adaptor in the chain is an unordered iterator source.
fn receiver_is_unordered(tokens: &[Token], term: usize) -> bool {
    if term < 2 {
        return false;
    }
    let mut j = term as isize - 2;
    while j >= 0 {
        let t = &tokens[j as usize];
        if t.is_punct(")") {
            // `... name( .. ) . terminal` — inspect `name` and keep walking.
            let Some(open) = matching_back(tokens, j as usize) else {
                return false;
            };
            if open == 0 {
                return false;
            }
            let name = &tokens[open - 1];
            if name.kind != TokenKind::Ident {
                // Parenthesized expression receiver: stop (conservative).
                return false;
            }
            if UNORDERED_SOURCES.contains(&name.text.as_str()) {
                return true;
            }
            if open >= 2 && tokens[open - 2].is_punct(".") {
                j = open as isize - 3;
                continue;
            }
            // Free-function call at the chain head.
            return false;
        } else if t.kind == TokenKind::Ident || t.is_punct("?") {
            // Field access (`self.per_vehicle`) or try operator: step over.
            if j >= 2 && tokens[j as usize - 1].is_punct(".") {
                j -= 2;
                continue;
            }
            return false;
        } else {
            return false;
        }
    }
    false
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`.
fn matching_back(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        if tokens[k].is_punct(")") {
            depth += 1;
        } else if tokens[k].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_file;

    fn rules_hit(src: &str) -> Vec<String> {
        check_file("test.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn hash_map_field_fires() {
        assert_eq!(
            rules_hit("struct S { m: HashMap<u32, u32> }"),
            vec![HASH_COLLECTIONS]
        );
    }

    #[test]
    fn instant_now_fires() {
        assert_eq!(
            rules_hit("fn f() { let t = Instant::now(); }"),
            vec![WALL_CLOCK]
        );
    }

    #[test]
    fn thread_rng_and_rand_random_fire() {
        assert_eq!(
            rules_hit("fn f() { let x = thread_rng(); let y: f64 = rand::random(); }"),
            vec![AMBIENT_RNG, AMBIENT_RNG]
        );
    }

    #[test]
    fn static_mut_and_env_fire() {
        assert_eq!(
            rules_hit("static mut COUNTER: u32 = 0;"),
            vec![GLOBAL_STATE]
        );
        assert_eq!(
            rules_hit("fn f() { let p = std::env::var(\"PATH\"); }"),
            vec![GLOBAL_STATE]
        );
        assert_eq!(rules_hit("use std::env;"), vec![GLOBAL_STATE]);
    }

    #[test]
    fn immutable_static_is_fine() {
        assert!(rules_hit("static NAME: &str = \"x\";").is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_fires_across_lines() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b)\n    .unwrap(); }";
        assert_eq!(rules_hit(src), vec![FLOAT_ORDERING]);
    }

    #[test]
    fn partial_cmp_definition_does_not_fire() {
        let src = "impl PartialOrd for S { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn handled_partial_cmp_does_not_fire() {
        assert!(rules_hit(
            "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap_or(Ordering::Equal); }"
        )
        .is_empty());
    }

    #[test]
    fn refcell_mutex_and_atomics_fire_d6() {
        assert_eq!(
            rules_hit("struct W { cache: RefCell<Vec<u64>> }"),
            vec![INTERIOR_MUTABILITY]
        );
        assert_eq!(
            rules_hit("struct W { lock: Mutex<u32> }"),
            vec![INTERIOR_MUTABILITY]
        );
        assert_eq!(
            rules_hit("struct W { n: AtomicUsize }"),
            vec![INTERIOR_MUTABILITY]
        );
    }

    #[test]
    fn imported_cell_fires_d6_via_usegraph_but_local_cell_does_not() {
        assert_eq!(
            rules_hit("use std::cell::Cell;\nstruct W { c: Cell<u32> }"),
            vec![INTERIOR_MUTABILITY, INTERIOR_MUTABILITY]
        );
        // An unrelated local `Cell` (the wireless grid coordinate) is clean.
        assert!(rules_hit("type Cell = (i64, i64);\nfn f(c: Cell) -> Cell { c }").is_empty());
    }

    #[test]
    fn float_sum_over_values_fires_d7() {
        assert_eq!(
            rules_hit("fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum::<f64>() }"),
            vec![FLOAT_REDUCTION]
        );
        // Without a turbofish the element type is unknown: still suspect.
        assert_eq!(
            rules_hit("fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }"),
            vec![FLOAT_REDUCTION]
        );
        // Through adaptors.
        assert_eq!(
            rules_hit("fn f(m: &BTreeMap<u32, V>) -> f64 { m.values().map(|v| v.x).sum::<f64>() }"),
            vec![FLOAT_REDUCTION]
        );
    }

    #[test]
    fn integer_turbofish_sum_is_exempt_d7() {
        assert!(
            rules_hit("fn f(m: &BTreeMap<u32, u64>) -> u64 { m.values().sum::<u64>() }").is_empty()
        );
        assert!(rules_hit(
            "fn f(m: &BTreeMap<u32, Vec<u8>>) -> usize { m.values().map(Vec::len).sum::<usize>() }"
        )
        .is_empty());
    }

    #[test]
    fn ordered_receiver_sum_is_exempt_d7() {
        assert!(rules_hit("fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }").is_empty());
        assert!(rules_hit("fn f(v: &Vec<f64>) -> f64 { v.iter().copied().sum() }").is_empty());
    }

    #[test]
    fn float_fold_and_reduce_over_values_fire_d7() {
        assert_eq!(
            rules_hit("fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().fold(0.0, |a, b| a + b) }"),
            vec![FLOAT_REDUCTION]
        );
        assert_eq!(
            rules_hit(
                "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().copied().reduce(|a, b| a + b).unwrap_or(0.0) }"
            ),
            vec![FLOAT_REDUCTION]
        );
    }

    #[test]
    fn order_free_fold_and_reduce_are_exempt_d7() {
        assert!(rules_hit(
            "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().fold(0.0, f64::max) }"
        )
        .is_empty());
        assert!(rules_hit(
            "fn f(m: &BTreeMap<u32, f64>) -> Option<f64> { m.values().copied().reduce(f64::min) }"
        )
        .is_empty());
    }

    #[test]
    fn stdio_macros_and_fs_fire_d8() {
        assert_eq!(rules_hit("fn f() { println!(\"hi\"); }"), vec![SIM_IO]);
        assert_eq!(
            rules_hit("fn f() { let _ = std::fs::read_to_string(\"x\"); }"),
            vec![SIM_IO]
        );
        assert_eq!(
            rules_hit("fn f() { std::thread::spawn(|| {}); }"),
            vec![SIM_IO]
        );
    }

    #[test]
    fn fmt_write_is_not_d8() {
        assert!(rules_hit(
            "use std::fmt::Write;\nfn f(s: &mut String) { let _ = write!(s, \"x\"); }"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n fn t() { let i = Instant::now(); }\n}";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_same_line_and_next_line() {
        let trailing = "struct S { m: HashSet<u32> } // comfase-lint: allow(hash-collections, reason = \"membership only\")";
        assert!(rules_hit(trailing).is_empty());
        let above =
            "// comfase-lint: allow(hash-collections, reason = \"membership only\")\nstruct S { m: HashSet<u32> }";
        assert!(rules_hit(above).is_empty());
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src =
            "// comfase-lint: allow(wall-clock, reason = \"wrong rule\")\nstruct S { m: HashSet<u32> }";
        assert_eq!(rules_hit(src), vec![HASH_COLLECTIONS]);
    }

    #[test]
    fn host_region_exempts_host_rules_only() {
        // D2/D6/D8 are exempt inside a host region…
        let src = "// comfase-lint: host-region(reason = \"campaign supervision thread\")\nfn sup() {\n let t = Instant::now();\n let m = Mutex::new(0);\n let _ = std::fs::read(\"x\");\n}";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
        // …but sim-determinism rules are not.
        let src = "// comfase-lint: host-region(reason = \"campaign supervision thread\")\nfn sup() {\n let m: HashMap<u32, u32> = HashMap::new();\n}";
        assert_eq!(rules_hit(src), vec![HASH_COLLECTIONS, HASH_COLLECTIONS]);
    }

    #[test]
    fn host_region_does_not_leak_past_its_item() {
        let src = "// comfase-lint: host-region(reason = \"journal writer\")\nfn host() { let t = Instant::now(); }\nfn sim() { let t = Instant::now(); }";
        assert_eq!(rules_hit(src), vec![WALL_CLOCK]);
    }

    #[test]
    fn malformed_annotation_is_reported() {
        assert_eq!(
            rules_hit("// comfase-lint: allow(hash-collections)"),
            vec![BAD_ANNOTATION]
        );
        assert_eq!(
            rules_hit("// comfase-lint: allow(no-such-rule, reason = \"hm\")"),
            vec![BAD_ANNOTATION]
        );
        assert_eq!(
            rules_hit("// comfase-lint: host-region()"),
            vec![BAD_ANNOTATION]
        );
    }

    #[test]
    fn clean_source_is_silent() {
        let src = "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn violations_carry_location_and_snippet() {
        let v = check_file("crates/x/src/a.rs", "\nstruct S { m: HashMap<u32, u32> }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, "crates/x/src/a.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].snippet.contains("HashMap"));
    }
}
