//! Diagnostic types and rendering (rustc-style text and machine JSON).

use std::fmt::Write as _;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (kebab-case, see [`crate::rules::RULES`]).
    pub rule: String,
    /// File the violation is in, as passed to the checker.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// A whole-run report.
#[derive(Debug, Default)]
pub struct Report {
    /// Every violation found, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the scan found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders rustc-style text diagnostics.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "error[{}]: {}", v.rule, v.message);
            let _ = writeln!(out, "  --> {}:{}", v.file, v.line);
            if !v.snippet.is_empty() {
                let n = v.line.to_string();
                let pad = " ".repeat(n.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{n} | {}", v.snippet);
                let _ = writeln!(out, "{pad} |");
            }
            let _ = writeln!(
                out,
                "   = help: if this site is genuinely safe, exempt it with \
                 `// comfase-lint: allow({}, reason = \"...\")`\n",
                v.rule
            );
        }
        match self.violations.len() {
            0 => {
                let _ = writeln!(
                    out,
                    "comfase-lint: {} file(s) scanned, no determinism violations",
                    self.files_scanned
                );
            }
            n => {
                let _ = writeln!(
                    out,
                    "comfase-lint: {n} determinism violation(s) in {} file(s) scanned",
                    self.files_scanned
                );
            }
        }
        out
    }

    /// Renders the machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}",
                json_string(&v.rule),
                json_string(&v.file),
                v.line,
                json_string(&v.message),
                json_string(&v.snippet),
            );
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![Violation {
                rule: "hash-collections".into(),
                file: "crates/des/src/queue.rs".into(),
                line: 85,
                message: "`HashSet` in simulation-state code".into(),
                snippet: "cancelled: HashSet<u64>,".into(),
            }],
            files_scanned: 3,
        }
    }

    #[test]
    fn text_has_rustc_style_location() {
        let text = sample().render_text();
        assert!(text.contains("error[hash-collections]"));
        assert!(text.contains("--> crates/des/src/queue.rs:85"));
        assert!(text.contains("1 determinism violation(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = sample();
        r.violations[0].snippet = "say \"hi\"\tnow".into();
        let json = r.render_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\\\"hi\\\"\\tnow"));
        assert!(json.contains("\"line\": 85"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn clean_report_renders_empty_array() {
        let r = Report {
            violations: vec![],
            files_scanned: 2,
        };
        assert!(r.render_json().contains("\"violations\": []"));
        assert!(r.render_text().contains("no determinism violations"));
    }
}
