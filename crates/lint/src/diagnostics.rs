//! Diagnostic types and rendering (rustc-style text and machine JSON).

use std::fmt::Write as _;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (kebab-case, see [`crate::rules::RULES`]).
    pub rule: String,
    /// File the violation is in, as passed to the checker.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// A whole-run report.
#[derive(Debug, Default)]
pub struct Report {
    /// Every violation found, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the scan found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders rustc-style text diagnostics.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "error[{}]: {}", v.rule, v.message);
            let _ = writeln!(out, "  --> {}:{}", v.file, v.line);
            if !v.snippet.is_empty() {
                let n = v.line.to_string();
                let pad = " ".repeat(n.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{n} | {}", v.snippet);
                let _ = writeln!(out, "{pad} |");
            }
            let _ = writeln!(
                out,
                "   = help: if this site is genuinely safe, exempt it with \
                 `// comfase-lint: allow({}, reason = \"...\")`\n",
                v.rule
            );
        }
        match self.violations.len() {
            0 => {
                let _ = writeln!(
                    out,
                    "comfase-lint: {} file(s) scanned, no determinism violations",
                    self.files_scanned
                );
            }
            n => {
                let _ = writeln!(
                    out,
                    "comfase-lint: {n} determinism violation(s) in {} file(s) scanned",
                    self.files_scanned
                );
            }
        }
        out
    }

    /// Renders a minimal SARIF 2.1.0 log (GitHub code-scanning compatible).
    ///
    /// One run, one driver (`comfase-lint`), the full D1–D8 rule metadata,
    /// and one `result` per violation with a physical location. Output is
    /// deterministic for a given report.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str("          \"name\": \"comfase-lint\",\n");
        out.push_str("          \"informationUri\": \"https://example.invalid/comfase-rs\",\n");
        out.push_str("          \"rules\": [");
        let mut rule_ids: Vec<&'static str> = Vec::new();
        for (i, rule) in crate::rules::RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            rule_ids.push(rule.id);
            let _ = write!(
                out,
                "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \"fullDescription\": {{\"text\": {}}}}}",
                json_string(rule.id),
                json_string(rule.summary),
                json_string(rule.why),
            );
        }
        rule_ids.push(crate::rules::BAD_ANNOTATION);
        let _ = write!(
            out,
            ",\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \"fullDescription\": {{\"text\": {}}}}}",
            json_string(crate::rules::BAD_ANNOTATION),
            json_string("malformed `comfase-lint:` annotation"),
            json_string(
                "an exemption without a reviewable justification is a silent hole in the audit"
            ),
        );
        out.push_str("\n          ]\n        }\n      },\n");
        out.push_str("      \"results\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rule_index = rule_ids
                .iter()
                .position(|id| *id == v.rule)
                .unwrap_or(rule_ids.len() - 1);
            let _ = write!(
                out,
                "\n        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": \"error\", \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_string(&v.rule),
                json_string(&v.message),
                json_string(&v.file),
                v.line,
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }

    /// Renders the machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}",
                json_string(&v.rule),
                json_string(&v.file),
                v.line,
                json_string(&v.message),
                json_string(&v.snippet),
            );
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![Violation {
                rule: "hash-collections".into(),
                file: "crates/des/src/queue.rs".into(),
                line: 85,
                message: "`HashSet` in simulation-state code".into(),
                snippet: "cancelled: HashSet<u64>,".into(),
            }],
            files_scanned: 3,
        }
    }

    #[test]
    fn text_has_rustc_style_location() {
        let text = sample().render_text();
        assert!(text.contains("error[hash-collections]"));
        assert!(text.contains("--> crates/des/src/queue.rs:85"));
        assert!(text.contains("1 determinism violation(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = sample();
        r.violations[0].snippet = "say \"hi\"\tnow".into();
        let json = r.render_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\\\"hi\\\"\\tnow"));
        assert!(json.contains("\"line\": 85"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sarif_is_well_formed_and_lists_rules() {
        let sarif = sample().render_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"name\": \"comfase-lint\""));
        // All eight rules plus the annotation meta-rule are declared.
        for rule in crate::rules::RULES {
            assert!(
                sarif.contains(&format!("\"id\": \"{}\"", rule.id)),
                "{}",
                rule.id
            );
        }
        assert!(sarif.contains("\"id\": \"bad-annotation\""));
        assert!(sarif.contains("\"ruleId\": \"hash-collections\""));
        assert!(sarif.contains("\"startLine\": 85"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }

    #[test]
    fn clean_report_renders_empty_array() {
        let r = Report {
            violations: vec![],
            files_scanned: 2,
        };
        assert!(r.render_json().contains("\"violations\": []"));
        assert!(r.render_text().contains("no determinism violations"));
    }
}
