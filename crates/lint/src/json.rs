//! A minimal JSON reader for the auditor's own artifacts.
//!
//! The lint crate is deliberately dependency-free (see the crate docs), but
//! the waiver baseline (`lint-baseline.json`) and the incremental cache
//! (`.lint-cache.json`) are JSON files the auditor must read back. This
//! module is a small recursive-descent parser covering exactly the JSON
//! subset those files use: objects, arrays, strings, unsigned integers,
//! booleans and null. Writing stays with the hand-rolled renderers (the
//! auditor always emits its own files, so the writer side is just
//! [`crate::diagnostics::json_string`] plus string concatenation).

use std::collections::BTreeMap;

/// A parsed JSON value. Maps use [`BTreeMap`] so re-serialization is
/// deterministic (the auditor's own output files must be byte-stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Stored as `f64`; the auditor only writes u32-sized
    /// integers, which `f64` represents exactly.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(u8::is_ascii_whitespace) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by the auditor's
                        // own writers; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full character.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let ch = s
                    .chars()
                    .next()
                    .ok_or_else(|| format!("invalid utf-8 at byte {}", *pos))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(out));
    }
    loop {
        out.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_cache_shapes() {
        let v = parse(
            r#"{"version": 1, "files": {"a.rs": {"hash": "deadbeef", "findings": [["hash-collections", 3, false, "msg"]], "ok": true, "none": null}}}"#,
        )
        .unwrap();
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        let entry = v.get("files").and_then(|f| f.get("a.rs")).unwrap();
        assert_eq!(entry.get("hash").and_then(Value::as_str), Some("deadbeef"));
        let finding = &entry.get("findings").unwrap().as_array().unwrap()[0];
        let cols = finding.as_array().unwrap();
        assert_eq!(cols[0].as_str(), Some("hash-collections"));
        assert_eq!(cols[1].as_u64(), Some(3));
        assert_eq!(cols[2], Value::Bool(false));
        assert_eq!(entry.get("none"), Some(&Value::Null));
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
