//! # comfase-lint — the ComFASE-RS determinism auditor
//!
//! ComFASE-RS's value proposition is *repeatable* fault/attack campaigns:
//! the golden-run vs. injected-run comparison (paper §IV) and the
//! prefix-fork/snapshot-DAG campaign runner are only sound if two runs with
//! the same seed are bit-identical. That property was nearly lost once
//! already — PR 1 had to convert the wireless `Medium`'s `HashMap`s to
//! `BTreeMap`s by hand after fork runs diverged from scratch runs purely
//! through hash iteration order.
//!
//! This crate makes that class of regression a CI failure instead of a
//! debugging session. It is a multi-pass workspace auditor over the
//! simulation crates (`des`, `traffic`, `wireless`, `platoon`, `core`,
//! `obs`) plus the host-tooling surfaces that feed them (`bench`,
//! `tests/src`), enforcing eight invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1 `hash-collections`    | no `HashMap`/`HashSet` in simulation-state code |
//! | D2 `wall-clock`          | no `Instant`/`SystemTime` reads in sim code |
//! | D3 `ambient-rng`         | no `thread_rng`/`rand::random`/`from_entropy` |
//! | D4 `global-state`        | no `static mut`/`lazy_static`/`OnceLock`, no `std::env` reads |
//! | D5 `float-ordering`      | no `.partial_cmp(..).unwrap()`; use `total_cmp` |
//! | D6 `interior-mutability` | no `Cell`/`RefCell`/`Mutex`/`RwLock`/atomics in sim state |
//! | D7 `float-reduction`     | no float `.sum()`/`fold`/`reduce` over unordered iterators |
//! | D8 `sim-io`              | no `std::fs`/`std::net`/thread spawns/stdio in sim code |
//!
//! ## The three passes
//!
//! 1. **Per-file** (cacheable): lex each file and extract raw textual
//!    findings, `allow(...)` annotations, `host-region` markers, test
//!    regions, and a symbol summary (`use` bindings, type aliases, local
//!    definitions, candidate usage sites). This phase is a pure function of
//!    the file bytes, so [`cache`] reuses it by content hash.
//! 2. **Use-graph** (always runs): join all symbol summaries into a
//!    workspace [`usegraph::SymbolTable`] and resolve every usage site
//!    transitively, so `use std::collections::HashMap as Map` in one module
//!    cannot launder a banned type into another. Diagnostics report the full
//!    alias chain.
//! 3. **Suppression & accounting**: drop findings inside test regions,
//!    sites waived by a reasoned `allow(...)`, and *host-side* findings
//!    (D2/D6/D8 and `std::env` reads) inside a sanctioned
//!    `// comfase-lint: host-region(reason = "...")`; report malformed
//!    annotations; tally waiver sites for the [`baseline`] ratchet.
//!
//! Test code (`#[cfg(test)]`, `#[test]`) is exempt. A production site can be
//! exempted only with an inline annotation carrying a non-empty reason:
//!
//! ```text
//! // comfase-lint: allow(hash-collections, reason = "membership-only, never iterated")
//! ```
//!
//! and host-side supervision items (campaign workers, the journal writer,
//! bench harness binaries) with a scope marker:
//!
//! ```text
//! // comfase-lint: host-region(reason = "campaign supervision; never touches forked sim state")
//! ```
//!
//! Run it as a CI gate with `cargo run -p comfase-lint -- --workspace`; add
//! `--format json` or `--format sarif` for machine-readable reports,
//! `--cache .lint-cache.json` for millisecond warm runs, and
//! `--baseline lint-baseline.json` for the waiver ratchet.
//!
//! ## Implementation notes
//!
//! The pass is deliberately **dependency-free**: a comment/string-aware
//! tokenizer ([`lexer`]) feeds lexical rules ([`rules`]) and a use-graph
//! pass ([`usegraph`]); artifacts are read back with a tiny JSON reader
//! ([`json`]). The invariants are lexical by nature (forbidden names, short
//! token sequences, and name bindings), so a full AST buys nothing here,
//! while zero dependencies keep the gate instant to build, immune to
//! upstream churn, and auditable end to end.

pub mod baseline;
pub mod cache;
pub mod diagnostics;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod usegraph;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diagnostics::{Report, Violation};

use baseline::WaiverSite;
use lexer::{host_region_ranges, lex, test_line_ranges, HostRegion};
use rules::RawFinding;
use usegraph::{FileSymbols, SymbolTable};

/// A well-formed, known-rule `allow(...)` annotation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// The waived rule id.
    pub rule: String,
    /// The justification.
    pub reason: String,
}

/// Phase-1 output for one file: everything later passes need, and nothing
/// that depends on other files — so it can be cached by content hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAnalysis {
    /// Display label (path relative to the workspace root).
    pub label: String,
    /// Content hash of the source ([`cache::content_hash`]).
    pub hash: String,
    /// Raw textual findings (before suppression).
    pub findings: Vec<RawFinding>,
    /// Well-formed `allow(...)` sites.
    pub allows: Vec<AllowSite>,
    /// Malformed annotations: `(line, problem)`.
    pub bad_annotations: Vec<(u32, String)>,
    /// Resolved `host-region` line spans.
    pub host_regions: Vec<HostRegion>,
    /// Test-exempt line spans.
    pub test_ranges: Vec<(u32, u32)>,
    /// Symbol summary for the use-graph pass.
    pub symbols: FileSymbols,
}

/// Runs phase 1 on one file's source.
pub fn analyze_source(label: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let findings = rules::scan_tokens(&lexed.tokens);
    let test_ranges = test_line_ranges(&lexed.tokens);
    let host_regions = host_region_ranges(&lexed);
    let mut allows = Vec::new();
    let mut bad_annotations = Vec::new();
    for a in &lexed.allows {
        match &a.problem {
            Some(p) => bad_annotations.push((a.line, format!("malformed lint annotation: {p}"))),
            None if !rules::is_rule(&a.rule) => bad_annotations.push((
                a.line,
                format!(
                    "malformed lint annotation: unknown rule `{}`; known rules: {}",
                    a.rule,
                    rules::RULES
                        .iter()
                        .map(|r| r.id)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )),
            None => allows.push(AllowSite {
                line: a.line,
                rule: a.rule.clone(),
                reason: a.reason.clone(),
            }),
        }
    }
    for hr in &lexed.host_regions {
        if let Some(p) = &hr.problem {
            bad_annotations.push((hr.line, format!("malformed lint annotation: {p}")));
        }
    }
    let symbols = usegraph::file_symbols(&lexed.tokens);
    FileAnalysis {
        label: label.to_string(),
        hash: cache::content_hash(source),
        findings,
        allows,
        bad_annotations,
        host_regions,
        test_ranges,
        symbols,
    }
}

/// Runs phases 2 and 3 over all per-file analyses, producing the report.
///
/// `sources` maps file labels to their contents (for snippet rendering);
/// a missing entry only costs the snippet, never a finding.
pub fn finalize(analyses: &[FileAnalysis], sources: &BTreeMap<String, String>) -> Report {
    // Phase 2: the cross-file use-graph.
    let symfiles: Vec<(String, FileSymbols)> = analyses
        .iter()
        .map(|a| (a.label.clone(), a.symbols.clone()))
        .collect();
    let table = SymbolTable::build(&symfiles);
    let mut alias_by_file: BTreeMap<&str, Vec<usegraph::AliasFinding>> = BTreeMap::new();
    for f in table.findings(&symfiles) {
        alias_by_file
            .entry(analyses_label(analyses, &f.file))
            .or_default()
            .push(f);
    }

    // Phase 3: suppression and report assembly.
    let mut report = Report {
        violations: Vec::new(),
        files_scanned: analyses.len(),
    };
    for a in analyses {
        let lines: Vec<&str> = sources
            .get(&a.label)
            .map(|s| s.lines().collect())
            .unwrap_or_default();
        let snippet = |line: u32| -> String {
            lines
                .get(line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default()
        };
        let in_tests = |line: u32| a.test_ranges.iter().any(|&(s, e)| s <= line && line <= e);
        let in_host = |line: u32| {
            a.host_regions
                .iter()
                .any(|r| r.start <= line && line <= r.end)
        };
        let allowed = |rule: &str, line: u32| {
            a.allows
                .iter()
                .any(|al| al.rule == rule && (al.line == line || al.line + 1 == line))
        };

        // Sites where a textual finding fired (pre-suppression): the alias
        // pass frequently re-discovers the same site through the path form,
        // and must not double-report it.
        let textual_keys: BTreeSet<(u32, &str)> =
            a.findings.iter().map(|f| (f.line, f.rule)).collect();

        for f in &a.findings {
            if in_tests(f.line) || allowed(f.rule, f.line) || (f.host_ok && in_host(f.line)) {
                continue;
            }
            report.violations.push(Violation {
                rule: f.rule.to_string(),
                file: a.label.clone(),
                line: f.line,
                message: f.message.clone(),
                snippet: snippet(f.line),
            });
        }
        let mut seen_alias: BTreeSet<(u32, &str)> = BTreeSet::new();
        for f in alias_by_file.get(a.label.as_str()).into_iter().flatten() {
            if textual_keys.contains(&(f.line, f.rule)) || !seen_alias.insert((f.line, f.rule)) {
                continue;
            }
            if in_tests(f.line) || allowed(f.rule, f.line) || (f.host_ok && in_host(f.line)) {
                continue;
            }
            report.violations.push(Violation {
                rule: f.rule.to_string(),
                file: a.label.clone(),
                line: f.line,
                message: f.message.clone(),
                snippet: snippet(f.line),
            });
        }
        for (line, problem) in &a.bad_annotations {
            if in_tests(*line) {
                continue;
            }
            report.violations.push(Violation {
                rule: rules::BAD_ANNOTATION.to_string(),
                file: a.label.clone(),
                line: *line,
                message: problem.clone(),
                snippet: snippet(*line),
            });
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

/// Interns an alias-finding file label against the analyses (the finding's
/// label always comes from an analysis, so this is a lookup, not a copy).
fn analyses_label<'a>(analyses: &'a [FileAnalysis], label: &str) -> &'a str {
    analyses
        .iter()
        .find(|a| a.label == label)
        .map(|a| a.label.as_str())
        .unwrap_or("")
}

/// Enumerates every waiver site: non-test `allow(...)` annotations plus
/// `host-region` markers (counted under [`baseline::HOST_REGION_KEY`]).
pub fn waiver_sites(analyses: &[FileAnalysis]) -> Vec<WaiverSite> {
    let mut out = Vec::new();
    for a in analyses {
        let in_tests = |line: u32| a.test_ranges.iter().any(|&(s, e)| s <= line && line <= e);
        for al in &a.allows {
            if in_tests(al.line) {
                continue;
            }
            out.push(WaiverSite {
                file: a.label.clone(),
                line: al.line,
                rule: al.rule.clone(),
                reason: al.reason.clone(),
            });
        }
        for hr in &a.host_regions {
            out.push(WaiverSite {
                file: a.label.clone(),
                line: hr.marker_line,
                rule: baseline::HOST_REGION_KEY.to_string(),
                reason: hr.reason.clone(),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Scan statistics (reported on stderr for cache observability).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanStats {
    /// Files whose phase-1 analysis was reused from the cache.
    pub cache_hits: usize,
    /// Files that were (re-)lexed this run.
    pub cache_misses: usize,
}

/// A full scan result: report, waiver sites, and cache statistics.
#[derive(Debug)]
pub struct ScanOutput {
    /// The violation report.
    pub report: Report,
    /// Every waiver site in the scanned tree.
    pub waivers: Vec<WaiverSite>,
    /// Cache hit/miss counts for this run.
    pub stats: ScanStats,
}

/// Scans the given files, optionally through an incremental cache.
///
/// With `cache_path`, phase-1 analyses are reused for files whose content
/// hash matches and the cache is rewritten afterwards; the cross-file pass
/// always runs, so the report is byte-identical with or without a cache.
///
/// # Errors
///
/// Fails if a source file cannot be read or the cache cannot be written.
pub fn scan_files_cached(
    root: &Path,
    files: &[PathBuf],
    cache_path: Option<&Path>,
) -> io::Result<ScanOutput> {
    let cached = cache_path.map(cache::load).unwrap_or_default();
    let mut analyses = Vec::with_capacity(files.len());
    let mut sources = BTreeMap::new();
    let mut stats = ScanStats::default();
    for path in files {
        let source = fs::read_to_string(path)?;
        let label = workspace::display_path(root, path);
        let hash = cache::content_hash(&source);
        let analysis = match cached.lookup(&label, &hash) {
            Some(hit) => {
                stats.cache_hits += 1;
                hit
            }
            None => {
                stats.cache_misses += 1;
                analyze_source(&label, &source)
            }
        };
        sources.insert(label, source);
        analyses.push(analysis);
    }
    let report = finalize(&analyses, &sources);
    let waivers = waiver_sites(&analyses);
    if let Some(path) = cache_path {
        cache::save(path, &analyses)?;
    }
    Ok(ScanOutput {
        report,
        waivers,
        stats,
    })
}

/// Scans the given files (as read from disk) and builds a [`Report`].
///
/// `root` is only used to shorten paths in diagnostics.
///
/// # Errors
///
/// Fails if a file cannot be read.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    scan_files_cached(root, files, None).map(|o| o.report)
}

/// Scans the audited crates of the workspace rooted at `root` (the
/// simulation crates plus `bench` and `tests/src`).
///
/// # Errors
///
/// Fails if the workspace layout is missing an audited crate or a file
/// cannot be read.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    scan_workspace_cached(root, None).map(|o| o.report)
}

/// [`scan_workspace`] with waiver accounting and an optional cache.
///
/// # Errors
///
/// Fails if the workspace layout is missing an audited crate, a file cannot
/// be read, or the cache cannot be written.
pub fn scan_workspace_cached(root: &Path, cache_path: Option<&Path>) -> io::Result<ScanOutput> {
    let files = workspace::audited_source_files(root)?;
    scan_files_cached(root, &files, cache_path)
}

/// Checks a single file's source: phase 1 plus a single-file phase 2/3.
/// The compatibility entry point for unit tests and editor integrations.
pub fn check_file(file: &str, source: &str) -> Vec<Violation> {
    let analysis = analyze_source(file, source);
    let mut sources = BTreeMap::new();
    sources.insert(file.to_string(), source.to_string());
    finalize(std::slice::from_ref(&analysis), &sources).violations
}
