//! # comfase-lint — the ComFASE-RS determinism auditor
//!
//! ComFASE-RS's value proposition is *repeatable* fault/attack campaigns:
//! the golden-run vs. injected-run comparison (paper §IV) and the
//! prefix-fork campaign runner are only sound if two runs with the same
//! seed are bit-identical. That property was nearly lost once already —
//! PR 1 had to convert the wireless `Medium`'s `HashMap`s to `BTreeMap`s by
//! hand after fork runs diverged from scratch runs purely through hash
//! iteration order.
//!
//! This crate makes that class of regression a CI failure instead of a
//! debugging session. It is a workspace-aware static-analysis pass over the
//! five simulation crates (`des`, `traffic`, `wireless`, `platoon`, `core`)
//! enforcing five invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-collections` | no `HashMap`/`HashSet` in simulation-state code |
//! | `wall-clock`       | no `Instant`/`SystemTime` reads in sim code |
//! | `ambient-rng`      | no `thread_rng`/`rand::random`/`from_entropy` |
//! | `global-state`     | no `static mut`/`lazy_static`/`OnceLock`, no `std::env` reads |
//! | `float-ordering`   | no `.partial_cmp(..).unwrap()`; use `total_cmp` |
//!
//! Test code (`#[cfg(test)]`, `#[test]`) is exempt. A production site can be
//! exempted only with an inline annotation carrying a non-empty reason:
//!
//! ```text
//! // comfase-lint: allow(hash-collections, reason = "membership-only, never iterated")
//! ```
//!
//! Run it as a CI gate with `cargo run -p comfase-lint -- --workspace`; add
//! `--format json` for the machine-readable report.
//!
//! ## Implementation notes
//!
//! The pass is deliberately **dependency-free**: a comment/string-aware
//! tokenizer ([`lexer`]) feeds lexical rules ([`rules`]). The invariants are
//! lexical by nature (forbidden names and short token sequences), so a full
//! AST buys nothing here, while zero dependencies keep the gate instant to
//! build, immune to upstream churn, and auditable end to end.

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

pub use diagnostics::{Report, Violation};

/// Scans the given files (as read from disk) and builds a [`Report`].
///
/// `root` is only used to shorten paths in diagnostics.
///
/// # Errors
///
/// Fails if a file cannot be read.
pub fn scan_files(root: &Path, files: &[std::path::PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for path in files {
        let source = fs::read_to_string(path)?;
        let label = workspace::display_path(root, path);
        report.violations.extend(rules::check_file(&label, &source));
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Scans the five simulation crates of the workspace rooted at `root`.
///
/// # Errors
///
/// Fails if the workspace layout is missing a simulation crate or a file
/// cannot be read.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let files = workspace::sim_source_files(root)?;
    scan_files(root, &files)
}
