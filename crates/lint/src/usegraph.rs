//! Cross-file use-graph pass: alias and re-export resolution.
//!
//! The per-file token rules (D1–D8) catch a banned name written where it is
//! used — but a banned *type* can be laundered across module boundaries:
//!
//! ```text
//! // crates/x/src/util.rs
//! pub use std::collections::HashMap as Map;   // caught here textually…
//! // crates/x/src/state.rs
//! use crate::util::Map;                       // …but this file is clean
//! struct S { m: Map<u32, u32> }               // …to a per-file scan
//! ```
//!
//! This pass closes that hole. Phase 1 (per file, cacheable) extracts a
//! symbol summary: `use` bindings (including `as` renames, `pub use`
//! re-exports and grouped trees), `type` aliases, locally defined item
//! names, and every *candidate usage site* (qualified paths and bare uses
//! of bound names). Phase 2 joins the summaries into a workspace
//! [`SymbolTable`] and resolves every site transitively; a site whose final
//! absolute path lands in the banned-path table produces a violation that
//! reports the **full alias chain** (each `use`/`type` hop with file and
//! line), so the diagnostic explains *why* an innocent-looking name is
//! banned.
//!
//! Scope notes: glob imports (`use x::*`) and inline `mod m { ... }` blocks
//! are not traversed — a glob cannot *rename* a type, so the textual rules
//! still catch the banned name at its spelling sites; inline-module
//! bindings are attributed to the enclosing file's module, which is exact
//! for this workspace (one module per file).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::rules::{
    AMBIENT_RNG, GLOBAL_STATE, HASH_COLLECTIONS, INTERIOR_MUTABILITY, SIM_IO, WALL_CLOCK,
};

/// How a [`BannedPath`] pattern matches a resolved absolute path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatchKind {
    /// The whole path must equal the pattern.
    Exact,
    /// The path must start with the pattern (module bans like `std::fs`).
    Prefix,
}

/// One entry of the banned-path table.
struct BannedPath {
    path: &'static [&'static str],
    kind: MatchKind,
    rule: &'static str,
    /// `true` when host-side supervision code may legitimately use it (the
    /// finding is then exempt inside a `host-region`).
    host_ok: bool,
    note: &'static str,
}

const E: MatchKind = MatchKind::Exact;
const P: MatchKind = MatchKind::Prefix;

/// Absolute paths (post `core`/`alloc` → `std` normalization) that must not
/// be reachable from simulation code, with the rule each one violates.
static BANNED_PATHS: &[BannedPath] = &[
    // D1 hash collections.
    BannedPath {
        path: &["std", "collections", "HashMap"],
        kind: E,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is per-process random",
    },
    BannedPath {
        path: &["std", "collections", "HashSet"],
        kind: E,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is per-process random",
    },
    BannedPath {
        path: &["std", "collections", "hash_map"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is per-process random",
    },
    BannedPath {
        path: &["std", "collections", "hash_set"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is per-process random",
    },
    BannedPath {
        path: &["std", "hash", "RandomState"],
        kind: E,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "randomized hasher state",
    },
    BannedPath {
        path: &["hashbrown"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is per-process random",
    },
    BannedPath {
        path: &["ahash"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is per-process random",
    },
    BannedPath {
        path: &["fxhash"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is insertion-dependent",
    },
    BannedPath {
        path: &["rustc_hash"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "hash iteration order is insertion-dependent",
    },
    BannedPath {
        path: &["indexmap"],
        kind: P,
        rule: HASH_COLLECTIONS,
        host_ok: false,
        note: "insertion-order iteration leaks construction history",
    },
    // D2 wall clock.
    BannedPath {
        path: &["std", "time", "Instant"],
        kind: E,
        rule: WALL_CLOCK,
        host_ok: true,
        note: "host clock",
    },
    BannedPath {
        path: &["std", "time", "SystemTime"],
        kind: E,
        rule: WALL_CLOCK,
        host_ok: true,
        note: "host clock",
    },
    BannedPath {
        path: &["std", "time", "UNIX_EPOCH"],
        kind: E,
        rule: WALL_CLOCK,
        host_ok: true,
        note: "host clock",
    },
    // D3 ambient randomness.
    BannedPath {
        path: &["rand", "thread_rng"],
        kind: E,
        rule: AMBIENT_RNG,
        host_ok: false,
        note: "thread-local entropy",
    },
    BannedPath {
        path: &["rand", "random"],
        kind: E,
        rule: AMBIENT_RNG,
        host_ok: false,
        note: "thread-local entropy",
    },
    BannedPath {
        path: &["rand", "rngs", "ThreadRng"],
        kind: E,
        rule: AMBIENT_RNG,
        host_ok: false,
        note: "thread-local entropy",
    },
    BannedPath {
        path: &["rand", "rngs", "OsRng"],
        kind: E,
        rule: AMBIENT_RNG,
        host_ok: false,
        note: "OS entropy",
    },
    BannedPath {
        path: &["rand_core", "OsRng"],
        kind: E,
        rule: AMBIENT_RNG,
        host_ok: false,
        note: "OS entropy",
    },
    BannedPath {
        path: &["getrandom"],
        kind: P,
        rule: AMBIENT_RNG,
        host_ok: false,
        note: "OS entropy",
    },
    // D4 global state.
    BannedPath {
        path: &["std", "sync", "OnceLock"],
        kind: E,
        rule: GLOBAL_STATE,
        host_ok: false,
        note: "process-global cell",
    },
    BannedPath {
        path: &["std", "sync", "LazyLock"],
        kind: E,
        rule: GLOBAL_STATE,
        host_ok: false,
        note: "process-global cell",
    },
    BannedPath {
        path: &["std", "cell", "OnceCell"],
        kind: E,
        rule: GLOBAL_STATE,
        host_ok: false,
        note: "once-initialized cell",
    },
    BannedPath {
        path: &["std", "cell", "LazyCell"],
        kind: E,
        rule: GLOBAL_STATE,
        host_ok: false,
        note: "once-initialized cell",
    },
    BannedPath {
        path: &["once_cell"],
        kind: P,
        rule: GLOBAL_STATE,
        host_ok: false,
        note: "process-global cell",
    },
    BannedPath {
        path: &["lazy_static"],
        kind: P,
        rule: GLOBAL_STATE,
        host_ok: false,
        note: "process-global state",
    },
    BannedPath {
        path: &["std", "env"],
        kind: P,
        rule: GLOBAL_STATE,
        host_ok: true,
        note: "host environment read",
    },
    // D6 interior mutability.
    BannedPath {
        path: &["std", "cell", "Cell"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "interior mutability hides state changes from Clone-based forking",
    },
    BannedPath {
        path: &["std", "cell", "RefCell"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "interior mutability hides state changes from Clone-based forking",
    },
    BannedPath {
        path: &["std", "cell", "UnsafeCell"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "interior mutability hides state changes from Clone-based forking",
    },
    BannedPath {
        path: &["std", "sync", "Mutex"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "lock acquisition order is scheduling-dependent",
    },
    BannedPath {
        path: &["std", "sync", "RwLock"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "lock acquisition order is scheduling-dependent",
    },
    BannedPath {
        path: &["std", "sync", "Condvar"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "wakeup order is scheduling-dependent",
    },
    BannedPath {
        path: &["std", "sync", "Barrier"],
        kind: E,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "thread synchronization in sim state",
    },
    BannedPath {
        path: &["std", "sync", "mpsc"],
        kind: P,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "channel receive order is scheduling-dependent",
    },
    BannedPath {
        path: &["std", "sync", "atomic"],
        kind: P,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "atomics order cross-thread effects nondeterministically",
    },
    BannedPath {
        path: &["parking_lot"],
        kind: P,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "lock acquisition order is scheduling-dependent",
    },
    BannedPath {
        path: &["crossbeam", "atomic"],
        kind: P,
        rule: INTERIOR_MUTABILITY,
        host_ok: true,
        note: "atomics order cross-thread effects nondeterministically",
    },
    // D8 sim-side I/O and threading.
    BannedPath {
        path: &["std", "fs"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "filesystem access",
    },
    BannedPath {
        path: &["std", "net"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "network access",
    },
    BannedPath {
        path: &["std", "process"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "process spawning",
    },
    BannedPath {
        path: &["std", "thread", "spawn"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "thread spawning",
    },
    BannedPath {
        path: &["std", "thread", "scope"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "thread spawning",
    },
    BannedPath {
        path: &["std", "thread", "Builder"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "thread spawning",
    },
    BannedPath {
        path: &["std", "thread", "sleep"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "wall-clock-dependent blocking",
    },
    BannedPath {
        path: &["std", "thread", "park"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "scheduling-dependent blocking",
    },
    BannedPath {
        path: &["std", "thread", "park_timeout"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "scheduling-dependent blocking",
    },
    BannedPath {
        path: &["std", "io", "stdin"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "stdio",
    },
    BannedPath {
        path: &["std", "io", "stdout"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "stdio",
    },
    BannedPath {
        path: &["std", "io", "stderr"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "stdio",
    },
    BannedPath {
        path: &["std", "io", "Stdin"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "stdio",
    },
    BannedPath {
        path: &["std", "io", "Stdout"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "stdio",
    },
    BannedPath {
        path: &["std", "io", "Stderr"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "stdio",
    },
    BannedPath {
        path: &["std", "io", "Write"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "byte-stream output (use `std::fmt::Write` for strings)",
    },
    BannedPath {
        path: &["std", "io", "Read"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "byte-stream input",
    },
    BannedPath {
        path: &["std", "io", "BufWriter"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "byte-stream output",
    },
    BannedPath {
        path: &["std", "io", "BufReader"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "byte-stream input",
    },
    BannedPath {
        path: &["std", "io", "copy"],
        kind: E,
        rule: SIM_IO,
        host_ok: true,
        note: "byte-stream copy",
    },
    BannedPath {
        path: &["crossbeam", "thread"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "thread spawning",
    },
    BannedPath {
        path: &["crossbeam", "channel"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "channel receive order is scheduling-dependent",
    },
    BannedPath {
        path: &["crossbeam_channel"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "channel receive order is scheduling-dependent",
    },
    BannedPath {
        path: &["rayon"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "work-stealing scheduling is nondeterministic",
    },
    BannedPath {
        path: &["tokio"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "async runtime scheduling is nondeterministic",
    },
    BannedPath {
        path: &["async_std"],
        kind: P,
        rule: SIM_IO,
        host_ok: true,
        note: "async runtime scheduling is nondeterministic",
    },
];

/// What produced a name binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// A `use` declaration (possibly `pub use`, possibly `as`-renamed).
    Use,
    /// A `type Name = Target;` alias.
    TypeAlias,
}

/// One name binding inside a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The bound name as visible in the module.
    pub name: String,
    /// The target path as written (unresolved; may be relative).
    pub target: Vec<String>,
    /// 1-based line of the declaration.
    pub line: u32,
    /// `true` for `pub use` / `pub type` (re-exports).
    pub is_pub: bool,
    /// Declaration kind.
    pub kind: BindKind,
}

impl Binding {
    /// Renders the declaration for alias-chain diagnostics.
    fn render(&self) -> String {
        let p = if self.is_pub { "pub " } else { "" };
        match self.kind {
            BindKind::Use => {
                let t = self.target.join("::");
                if self.target.last().map(String::as_str) == Some(self.name.as_str()) {
                    format!("{p}use {t}")
                } else {
                    format!("{p}use {t} as {}", self.name)
                }
            }
            BindKind::TypeAlias => {
                format!("{p}type {} = {}", self.name, self.target.join("::"))
            }
        }
    }
}

/// A candidate usage site: a qualified path (`a::b::C`) or a bare bound
/// name (single segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseSite {
    /// Path segments as written.
    pub path: Vec<String>,
    /// 1-based line.
    pub line: u32,
}

/// The per-file symbol summary (phase-1 output, cacheable).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSymbols {
    /// Name bindings declared in this file.
    pub bindings: Vec<Binding>,
    /// Names of items defined locally (they shadow nothing bannable).
    pub locals: Vec<String>,
    /// Candidate usage sites to resolve in phase 2.
    pub sites: Vec<UseSite>,
}

/// Keywords that are never usage sites on their own.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while",
];

/// Item keywords whose following identifier is a local definition.
const DEF_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "trait",
    "union",
    "fn",
    "mod",
    "const",
    "static",
    "macro_rules",
];

/// Extracts the symbol summary of one lexed file.
pub fn file_symbols(tokens: &[Token]) -> FileSymbols {
    let mut out = FileSymbols::default();
    extract_bindings(tokens, &mut out);
    extract_sites(tokens, &mut out);
    out
}

/// `true` if the token at `i` is at item position (start of file, after
/// `;`, `{`, `}`, or after a visibility modifier).
fn at_item_position(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &tokens[i - 1];
    if prev.is_punct(";") || prev.is_punct("{") || prev.is_punct("}") || prev.is_punct("]") {
        return true;
    }
    if prev.is_ident("pub") {
        return true;
    }
    // `pub(crate)` / `pub(super)` end with `)`.
    if prev.is_punct(")") && i >= 4 {
        return tokens[..i - 1]
            .iter()
            .rev()
            .take(3)
            .any(|t| t.is_ident("pub"));
    }
    false
}

/// `true` when the `use`/`type` at `i` is preceded by a visibility modifier.
fn is_pub_before(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    if tokens[i - 1].is_ident("pub") {
        return true;
    }
    tokens[i - 1].is_punct(")")
        && tokens[..i - 1]
            .iter()
            .rev()
            .take(3)
            .any(|t| t.is_ident("pub"))
}

fn extract_bindings(tokens: &[Token], out: &mut FileSymbols) {
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        if t.text == "use" && at_item_position(tokens, i) {
            let is_pub = is_pub_before(tokens, i);
            i = parse_use_tree(tokens, i + 1, &mut Vec::new(), is_pub, out);
            continue;
        }
        if t.text == "type"
            && at_item_position(tokens, i)
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            let is_pub = is_pub_before(tokens, i);
            i = parse_type_alias(tokens, i, is_pub, out);
            continue;
        }
        if DEF_KEYWORDS.contains(&t.text.as_str()) {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                if !KEYWORDS.contains(&name.text.as_str()) {
                    out.locals.push(name.text.clone());
                }
            }
        }
        i += 1;
    }
    out.locals.sort();
    out.locals.dedup();
}

/// Parses one use tree starting at `i` (just after `use` or after a `::`
/// inside a group), binding every leaf. Returns the index after the tree.
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    is_pub: bool,
    out: &mut FileSymbols,
) -> usize {
    let depth_at_entry = prefix.len();
    loop {
        match tokens.get(i) {
            Some(t) if t.is_punct("{") => {
                // Group: parse comma-separated subtrees under the prefix.
                i += 1;
                loop {
                    match tokens.get(i) {
                        Some(t) if t.is_punct("}") => {
                            i += 1;
                            break;
                        }
                        Some(t) if t.is_punct(",") => i += 1,
                        Some(_) => {
                            let mut sub = prefix.clone();
                            i = parse_use_tree(tokens, i, &mut sub, is_pub, out);
                        }
                        None => break,
                    }
                }
                break;
            }
            Some(t) if t.is_punct("*") => {
                // Glob: cannot rename, not traversed (see module docs).
                i += 1;
                break;
            }
            Some(t) if t.kind == TokenKind::Ident => {
                if t.text == "self" && !prefix.is_empty() {
                    // `use a::b::{self, ..}` binds `b` to `a::b`.
                    if let Some(name) = prefix.last().cloned() {
                        out.bindings.push(Binding {
                            name,
                            target: prefix.clone(),
                            line: t.line,
                            is_pub,
                            kind: BindKind::Use,
                        });
                    }
                    i += 1;
                    break;
                }
                prefix.push(t.text.clone());
                let line = t.line;
                match tokens.get(i + 1) {
                    Some(n) if n.is_punct("::") => {
                        i += 2;
                        continue;
                    }
                    Some(n) if n.is_ident("as") => {
                        if let Some(rename) =
                            tokens.get(i + 2).filter(|r| r.kind == TokenKind::Ident)
                        {
                            out.bindings.push(Binding {
                                name: rename.text.clone(),
                                target: prefix.clone(),
                                line,
                                is_pub,
                                kind: BindKind::Use,
                            });
                        }
                        i += 3;
                        break;
                    }
                    _ => {
                        out.bindings.push(Binding {
                            name: prefix.last().cloned().unwrap_or_default(),
                            target: prefix.clone(),
                            line,
                            is_pub,
                            kind: BindKind::Use,
                        });
                        i += 1;
                        break;
                    }
                }
            }
            _ => break,
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

/// Parses `type Name<..> = Target<..>;` starting at the `type` keyword.
/// Returns the index after the alias (best effort on malformed input).
fn parse_type_alias(tokens: &[Token], i: usize, is_pub: bool, out: &mut FileSymbols) -> usize {
    let name = tokens[i + 1].text.clone();
    let line = tokens[i + 1].line;
    let mut j = i + 2;
    // Skip generic parameters on the alias name.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while let Some(t) = tokens.get(j) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(";") {
                break;
            }
            j += 1;
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("=")) {
        // Associated type declaration without a default, or `where` bounds;
        // record the name as a local and move on.
        out.locals.push(name);
        return j;
    }
    j += 1;
    // Collect the leading path of the RHS (stop at `<`, `;`, or anything
    // that is not `ident` / `::`). `crate`/`self`/`super` are keywords but
    // legal path roots (`type Outer = crate::a::Inner;`).
    let mut target = Vec::new();
    while let Some(t) = tokens.get(j) {
        let is_path_root_kw = matches!(t.text.as_str(), "crate" | "self" | "super");
        if t.kind == TokenKind::Ident && (is_path_root_kw || !KEYWORDS.contains(&t.text.as_str())) {
            target.push(t.text.clone());
            j += 1;
            if tokens.get(j).is_some_and(|n| n.is_punct("::")) {
                j += 1;
                continue;
            }
        }
        break;
    }
    if target.is_empty() {
        // Non-path RHS (tuple, reference, fn pointer, `dyn`, …): the alias
        // is a local definition that shadows imports of the same name.
        out.locals.push(name);
    } else {
        out.bindings.push(Binding {
            name,
            target,
            line,
            is_pub,
            kind: BindKind::TypeAlias,
        });
    }
    j
}

fn extract_sites(tokens: &[Token], out: &mut FileSymbols) {
    let bound: BTreeSet<&str> = out.bindings.iter().map(|b| b.name.as_str()).collect();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        if i > 0 && (tokens[i - 1].is_punct("::") || tokens[i - 1].is_punct(".")) {
            // Tail of a path or a method/field name: not a site start.
            i += 1;
            continue;
        }
        if tokens.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            // Qualified path: collect `a::b::c` (stopping at turbofish).
            let mut path = vec![t.text.clone()];
            let mut j = i + 1;
            while tokens.get(j).is_some_and(|n| n.is_punct("::"))
                && tokens
                    .get(j + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
            {
                path.push(tokens[j + 1].text.clone());
                j += 2;
            }
            if path.len() > 1 {
                out.sites.push(UseSite { path, line: t.line });
            }
            i = j;
            continue;
        }
        if bound.contains(t.text.as_str()) && !KEYWORDS.contains(&t.text.as_str()) {
            out.sites.push(UseSite {
                path: vec![t.text.clone()],
                line: t.line,
            });
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Module paths
// ---------------------------------------------------------------------------

/// Maps a workspace crate directory name to its crate identifier.
fn crate_ident(dir: &str) -> String {
    match dir {
        "des" => "comfase_des".to_string(),
        "traffic" => "comfase_traffic".to_string(),
        "wireless" => "comfase_wireless".to_string(),
        "platoon" => "comfase_platoon".to_string(),
        "core" => "comfase".to_string(),
        "obs" => "comfase_obs".to_string(),
        "bench" => "comfase_bench".to_string(),
        "tests" => "comfase_integration".to_string(),
        other => other.replace('-', "_"),
    }
}

/// Derives the module path of a file from its display label
/// (`crates/des/src/rng.rs` → `["comfase_des", "rng"]`). Binary targets
/// (`src/bin/x.rs`) are their own crate roots; files outside any `src/`
/// tree are standalone roots.
pub fn module_of(label: &str) -> Vec<String> {
    let norm = label.replace('\\', "/");
    let segs: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    let Some(src_idx) = segs.iter().rposition(|s| *s == "src") else {
        let stem = segs
            .last()
            .map(|s| s.trim_end_matches(".rs"))
            .unwrap_or("file");
        return vec![format!("file_{}", stem.replace('-', "_"))];
    };
    let krate = if src_idx > 0 {
        crate_ident(segs[src_idx - 1])
    } else {
        "crate_root".to_string()
    };
    let rest = &segs[src_idx + 1..];
    if rest.first() == Some(&"bin") {
        let stem = rest
            .last()
            .map(|s| s.trim_end_matches(".rs"))
            .unwrap_or("main");
        return vec![format!("{krate}__bin_{}", stem.replace('-', "_"))];
    }
    let mut module = vec![krate];
    for (k, seg) in rest.iter().enumerate() {
        let is_last = k + 1 == rest.len();
        if is_last {
            let stem = seg.trim_end_matches(".rs");
            if stem != "lib" && stem != "main" && stem != "mod" {
                module.push(stem.to_string());
            }
        } else {
            module.push((*seg).to_string());
        }
    }
    module
}

// ---------------------------------------------------------------------------
// The workspace symbol table and resolution
// ---------------------------------------------------------------------------

/// One hop of an alias chain, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// File (display label) the binding lives in.
    pub file: String,
    /// Line of the binding.
    pub line: u32,
    /// Rendered declaration (`use std::collections::HashMap as Map`).
    pub decl: String,
}

/// A cross-file violation produced by the use-graph pass.
#[derive(Debug, Clone)]
pub struct AliasFinding {
    /// The rule the resolved target violates.
    pub rule: &'static str,
    /// File (display label) of the usage site.
    pub file: String,
    /// Line of the usage site.
    pub line: u32,
    /// Full diagnostic message including the alias chain.
    pub message: String,
    /// `true` when a `host-region` may exempt this finding.
    pub host_ok: bool,
}

#[derive(Debug, Clone)]
struct TableBinding {
    binding: Binding,
    file: String,
}

/// The joined workspace symbol table (phase 2).
#[derive(Debug, Default)]
pub struct SymbolTable {
    bindings: BTreeMap<Vec<String>, BTreeMap<String, TableBinding>>,
    locals: BTreeMap<Vec<String>, BTreeSet<String>>,
    modules: BTreeSet<Vec<String>>,
    crate_roots: BTreeSet<String>,
}

/// Result of resolving a path to an absolute target.
enum Resolved {
    /// A locally defined (or unindexed) item: cannot be banned.
    Internal,
    /// An external absolute path plus the alias chain that led to it.
    External(Vec<String>, Vec<ChainLink>),
}

impl SymbolTable {
    /// Builds the table from every scanned file's symbols.
    pub fn build(files: &[(String, FileSymbols)]) -> Self {
        let mut table = SymbolTable::default();
        for (label, symbols) in files {
            let module = module_of(label);
            table.crate_roots.insert(module[0].clone());
            // Register the module and all its ancestors.
            for k in 1..=module.len() {
                table.modules.insert(module[..k].to_vec());
            }
            let locals = table.locals.entry(module.clone()).or_default();
            for name in &symbols.locals {
                locals.insert(name.clone());
            }
            let bindings = table.bindings.entry(module.clone()).or_default();
            for b in &symbols.bindings {
                bindings.insert(
                    b.name.clone(),
                    TableBinding {
                        binding: b.clone(),
                        file: label.clone(),
                    },
                );
            }
        }
        table
    }

    /// Resolves every candidate site of every file and returns the findings
    /// whose final path is banned.
    pub fn findings(&self, files: &[(String, FileSymbols)]) -> Vec<AliasFinding> {
        let mut out = Vec::new();
        for (label, symbols) in files {
            let module = module_of(label);
            for site in &symbols.sites {
                let Resolved::External(path, chain) = self.resolve(&module, &site.path, 32) else {
                    continue;
                };
                let Some(banned) = banned_lookup(&path) else {
                    continue;
                };
                let written = site.path.join("::");
                let resolved = path.join("::");
                let mut message = if written == resolved {
                    format!("`{written}`: {} — banned in audited code", banned.note)
                } else {
                    format!(
                        "`{written}` resolves to `{resolved}`: {} — banned in audited code",
                        banned.note
                    )
                };
                if !chain.is_empty() {
                    let hops: Vec<String> = chain
                        .iter()
                        .map(|l| format!("`{}` ({}:{})", l.decl, l.file, l.line))
                        .collect();
                    message.push_str(&format!("; alias chain: {}", hops.join(" -> ")));
                }
                out.push(AliasFinding {
                    rule: banned.rule,
                    file: label.clone(),
                    line: site.line,
                    message,
                    host_ok: banned.host_ok,
                });
            }
        }
        out
    }

    fn resolve(&self, module: &[String], path: &[String], depth: u32) -> Resolved {
        if depth == 0 || path.is_empty() {
            return Resolved::Internal;
        }
        let mut chain = Vec::new();
        // Resolve the path root to either an internal module position or an
        // external absolute prefix.
        let first = path[0].as_str();
        let (mut abs, rest): (Vec<String>, &[String]) = match first {
            "crate" => (vec![module[0].clone()], &path[1..]),
            "self" => (module.to_vec(), &path[1..]),
            "super" => {
                let mut m = module.to_vec();
                let mut rest = &path[1..];
                m.pop();
                while rest.first().map(String::as_str) == Some("super") {
                    m.pop();
                    rest = &rest[1..];
                }
                if m.is_empty() {
                    return Resolved::Internal;
                }
                (m, rest)
            }
            _ if self.crate_roots.contains(first) => (vec![first.to_string()], &path[1..]),
            _ => {
                if let Some(tb) = self.bindings.get(module).and_then(|b| b.get(first)) {
                    chain.push(ChainLink {
                        file: tb.file.clone(),
                        line: tb.binding.line,
                        decl: tb.binding.render(),
                    });
                    match self.resolve(module, &tb.binding.target, depth - 1) {
                        Resolved::Internal => return Resolved::Internal,
                        Resolved::External(p, mut sub) => {
                            chain.append(&mut sub);
                            let mut full = p;
                            full.extend(path[1..].iter().cloned());
                            return Resolved::External(normalize(full), chain);
                        }
                    }
                }
                if self.locals.get(module).is_some_and(|l| l.contains(first)) {
                    return Resolved::Internal;
                }
                // Unknown root: an external crate (std, rand, …).
                return Resolved::External(normalize(path.to_vec()), chain);
            }
        };
        // Walk the remaining segments through workspace modules, following
        // re-exports as they appear.
        let mut idx = 0usize;
        while idx < rest.len() {
            let seg = rest[idx].as_str();
            if let Some(tb) = self.bindings.get(&abs).and_then(|b| b.get(seg)) {
                chain.push(ChainLink {
                    file: tb.file.clone(),
                    line: tb.binding.line,
                    decl: tb.binding.render(),
                });
                match self.resolve(&abs, &tb.binding.target, depth - 1) {
                    Resolved::Internal => return Resolved::Internal,
                    Resolved::External(p, mut sub) => {
                        chain.append(&mut sub);
                        let mut full = p;
                        full.extend(rest[idx + 1..].iter().cloned());
                        return Resolved::External(normalize(full), chain);
                    }
                }
            }
            let mut child = abs.clone();
            child.push(seg.to_string());
            if self.modules.contains(&child) {
                abs = child;
                idx += 1;
                continue;
            }
            // A plain item inside a workspace module: not bannable.
            return Resolved::Internal;
        }
        Resolved::Internal
    }
}

/// Normalizes `core::`/`alloc::` roots to `std::` for banned lookups.
fn normalize(mut path: Vec<String>) -> Vec<String> {
    if matches!(
        path.first().map(String::as_str),
        Some("core") | Some("alloc")
    ) {
        path[0] = "std".to_string();
    }
    path
}

fn banned_lookup(path: &[String]) -> Option<&'static BannedPath> {
    BANNED_PATHS.iter().find(|b| match b.kind {
        MatchKind::Exact => {
            path.len() == b.path.len() && path.iter().zip(b.path).all(|(a, e)| a == e)
        }
        MatchKind::Prefix => {
            path.len() >= b.path.len() && path.iter().zip(b.path).all(|(a, e)| a == e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn symbols(src: &str) -> FileSymbols {
        file_symbols(&lex(src).tokens)
    }

    #[test]
    fn use_as_rename_binds() {
        let s = symbols("use std::collections::HashMap as Map;\nfn f(m: Map<u32, u32>) {}");
        assert_eq!(s.bindings.len(), 1);
        assert_eq!(s.bindings[0].name, "Map");
        assert_eq!(s.bindings[0].target, ["std", "collections", "HashMap"]);
        // `Map` at the use line and in the signature are both sites.
        assert!(s.sites.iter().any(|u| u.path == ["Map"] && u.line == 2));
    }

    #[test]
    fn grouped_use_binds_every_leaf() {
        let s = symbols("use std::{collections::BTreeMap, fs::{self, File}, io::Write as W};");
        let names: Vec<&str> = s.bindings.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["BTreeMap", "fs", "File", "W"]);
        let fs = s.bindings.iter().find(|b| b.name == "fs").unwrap();
        assert_eq!(fs.target, ["std", "fs"]);
        let w = s.bindings.iter().find(|b| b.name == "W").unwrap();
        assert_eq!(w.target, ["std", "io", "Write"]);
    }

    #[test]
    fn type_alias_to_path_binds_and_tuple_alias_is_local() {
        let s = symbols("type Fast = HashMap<u32, u32>;\ntype Cell = (i64, i64);");
        assert_eq!(s.bindings.len(), 1);
        assert_eq!(s.bindings[0].name, "Fast");
        assert_eq!(s.bindings[0].target, ["HashMap"]);
        assert!(s.locals.contains(&"Cell".to_string()));
    }

    #[test]
    fn module_paths_derive_from_labels() {
        assert_eq!(module_of("crates/des/src/rng.rs"), ["comfase_des", "rng"]);
        assert_eq!(module_of("crates/core/src/lib.rs"), ["comfase"]);
        assert_eq!(
            module_of("crates/bench/src/bin/repro.rs"),
            ["comfase_bench__bin_repro"]
        );
        assert_eq!(module_of("tests/src/lib.rs"), ["comfase_integration"]);
        assert_eq!(
            module_of("crates/wireless/src/sub/mod.rs"),
            ["comfase_wireless", "sub"]
        );
        assert_eq!(module_of("standalone.rs"), ["file_standalone"]);
    }

    fn fire(files: &[(&str, &str)]) -> Vec<AliasFinding> {
        let parsed: Vec<(String, FileSymbols)> = files
            .iter()
            .map(|(label, src)| ((*label).to_string(), symbols(src)))
            .collect();
        SymbolTable::build(&parsed).findings(&parsed)
    }

    #[test]
    fn cross_file_alias_laundering_is_resolved_with_chain() {
        let findings = fire(&[
            ("crates/des/src/lib.rs", "pub mod util;\npub mod state;"),
            (
                "crates/des/src/util.rs",
                "pub use std::collections::HashMap as Map;",
            ),
            (
                "crates/des/src/state.rs",
                "use crate::util::Map;\npub struct S { pub m: Map<u32, u32> }",
            ),
        ]);
        let in_state: Vec<&AliasFinding> = findings
            .iter()
            .filter(|f| f.file.ends_with("state.rs"))
            .collect();
        assert!(!in_state.is_empty(), "{findings:?}");
        let f = in_state[0];
        assert_eq!(f.rule, HASH_COLLECTIONS);
        assert!(
            f.message.contains("std::collections::HashMap"),
            "{}",
            f.message
        );
        assert!(f.message.contains("alias chain"), "{}", f.message);
        assert!(f.message.contains("util.rs"), "{}", f.message);
    }

    #[test]
    fn local_type_alias_shadows_banned_name() {
        // `type Cell = (i64, i64)` must not look like `std::cell::Cell`.
        let findings = fire(&[(
            "crates/wireless/src/grid.rs",
            "type Cell = (i64, i64);\nfn f(c: Cell) -> Cell { c }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn direct_std_paths_resolve_without_imports() {
        let findings = fire(&[(
            "crates/des/src/a.rs",
            "fn f() { let _ = std::fs::read_to_string(\"x\"); }",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, SIM_IO);
        assert!(findings[0].host_ok);
    }

    #[test]
    fn imported_cell_fires_but_unrelated_cell_does_not() {
        let fires = fire(&[(
            "crates/des/src/a.rs",
            "use std::cell::Cell;\nstruct S { c: Cell<u32> }",
        )]);
        assert!(
            fires.iter().any(|f| f.rule == INTERIOR_MUTABILITY),
            "{fires:?}"
        );
        let clean = fire(&[("crates/des/src/b.rs", "struct Cell;\nfn f(c: Cell) {}")]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn transitive_type_alias_chain_resolves() {
        let findings = fire(&[
            (
                "crates/des/src/a.rs",
                "pub use std::collections::HashMap as Inner;",
            ),
            ("crates/des/src/b.rs", "pub type Outer = crate::a::Inner;"),
            (
                "crates/des/src/c.rs",
                "use crate::b::Outer;\nfn f(m: Outer) {}",
            ),
            (
                "crates/des/src/lib.rs",
                "pub mod a;\npub mod b;\npub mod c;",
            ),
        ]);
        let f = findings
            .iter()
            .find(|f| f.file.ends_with("c.rs"))
            .expect("finding in c.rs");
        assert!(
            f.message.contains("std::collections::HashMap"),
            "{}",
            f.message
        );
        // Both hops appear in the chain.
        assert!(f.message.contains("type Outer"), "{}", f.message);
        assert!(f.message.contains("as Inner"), "{}", f.message);
    }

    #[test]
    fn cross_crate_reexport_resolves() {
        let findings = fire(&[
            (
                "crates/des/src/lib.rs",
                "pub use std::collections::HashSet as FastSet;",
            ),
            (
                "crates/wireless/src/a.rs",
                "use comfase_des::FastSet;\nfn f(s: FastSet<u32>) {}",
            ),
        ]);
        assert!(
            findings.iter().any(|f| f.file.ends_with("a.rs")),
            "{findings:?}"
        );
    }

    #[test]
    fn benign_paths_do_not_fire() {
        let findings = fire(&[(
            "crates/des/src/a.rs",
            "use std::collections::BTreeMap;\nuse std::fmt::Write;\nfn f(m: BTreeMap<u32, u32>) {}",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
