//! The waiver ratchet: enumerate exemption sites, cap them with a committed
//! baseline, and fail CI when the count grows.
//!
//! Every `// comfase-lint: allow(rule, reason = "...")` site and every
//! `// comfase-lint: host-region(reason = "...")` marker is an intentional
//! hole in the audit. Holes are sometimes necessary (host-side supervision
//! code legitimately reads clocks and takes locks), but they must only ever
//! *shrink*: `lint-baseline.json` records the sanctioned per-rule counts,
//! `--baseline` fails the run when any count exceeds it, and suggests
//! re-tightening when counts drop. `--write-baseline` emits the file for
//! the current tree.

use std::collections::BTreeMap;

use crate::diagnostics::json_string as js;
use crate::json::{self, Value};

/// Pseudo-rule key under which `host-region` markers are counted.
pub const HOST_REGION_KEY: &str = "host-region";

/// One exemption site found in the tree (an `allow(...)` annotation outside
/// test code, or a `host-region` marker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverSite {
    /// File display label.
    pub file: String,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Waived rule id, or [`HOST_REGION_KEY`] for region markers.
    pub rule: String,
    /// The justification carried by the annotation.
    pub reason: String,
}

/// Per-rule waiver counts (the ratchet state).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Count per rule id (including [`HOST_REGION_KEY`]). Zero counts are
    /// omitted.
    pub counts: BTreeMap<String, u64>,
}

impl Baseline {
    /// Tallies the current tree's waiver sites.
    pub fn from_sites(sites: &[WaiverSite]) -> Self {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for site in sites {
            *counts.entry(site.rule.clone()).or_default() += 1;
        }
        Baseline { counts }
    }

    /// Parses a committed `lint-baseline.json`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or shape error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        if root.get("version").and_then(Value::as_u64) != Some(1) {
            return Err("lint-baseline.json: expected \"version\": 1".to_string());
        }
        let waivers = root
            .get("waivers")
            .and_then(Value::as_object)
            .ok_or("lint-baseline.json: missing \"waivers\" object")?;
        let mut counts = BTreeMap::new();
        for (rule, count) in waivers {
            let n = count.as_u64().ok_or_else(|| {
                format!("lint-baseline.json: count for `{rule}` is not a non-negative integer")
            })?;
            if n > 0 {
                counts.insert(rule.clone(), n);
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders the committed baseline format (deterministic, newline-terminated).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"waivers\": {");
        for (i, (rule, count)) in self.counts.iter().filter(|(_, c)| **c > 0).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {count}", js(rule)));
        }
        if self.counts.values().any(|c| *c > 0) {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Compares the current counts against the committed baseline.
    pub fn check(&self, committed: &Baseline) -> RatchetOutcome {
        let mut growth = Vec::new();
        let mut shrank = false;
        let rules: std::collections::BTreeSet<&String> =
            self.counts.keys().chain(committed.counts.keys()).collect();
        for rule in rules {
            let now = self.counts.get(rule.as_str()).copied().unwrap_or(0);
            let cap = committed.counts.get(rule.as_str()).copied().unwrap_or(0);
            if now > cap {
                growth.push(format!(
                    "waiver ratchet: `{rule}` has {now} waiver site(s), baseline allows {cap} \
                     — fix the new site or justify updating lint-baseline.json"
                ));
            } else if now < cap {
                shrank = true;
            }
        }
        RatchetOutcome { growth, shrank }
    }
}

/// Result of a ratchet comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetOutcome {
    /// One message per rule whose count grew (non-empty ⇒ fail).
    pub growth: Vec<String>,
    /// `true` when any count dropped below the baseline (suggest tightening).
    pub shrank: bool,
}

impl RatchetOutcome {
    /// `true` when no rule grew past its cap.
    pub fn passed(&self) -> bool {
        self.growth.is_empty()
    }
}

/// Renders the human-readable waiver enumeration (`--waiver-report`).
pub fn render_waiver_report(sites: &[WaiverSite]) -> String {
    let mut out = String::new();
    if sites.is_empty() {
        out.push_str("comfase-lint: no waiver sites (allow annotations or host-region markers)\n");
        return out;
    }
    let baseline = Baseline::from_sites(sites);
    out.push_str("comfase-lint waiver report\n");
    for (rule, count) in &baseline.counts {
        out.push_str(&format!("  {rule}: {count} site(s)\n"));
        for site in sites.iter().filter(|s| &s.rule == rule) {
            out.push_str(&format!(
                "    {}:{} — {}\n",
                site.file, site.line, site.reason
            ));
        }
    }
    out.push_str(&format!("  total: {} site(s)\n", sites.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(rule: &str, line: u32) -> WaiverSite {
        WaiverSite {
            file: "crates/core/src/x.rs".to_string(),
            line,
            rule: rule.to_string(),
            reason: "host-side supervision".to_string(),
        }
    }

    #[test]
    fn round_trip_render_parse() {
        let b = Baseline::from_sites(&[
            site("wall-clock", 1),
            site("wall-clock", 9),
            site(HOST_REGION_KEY, 3),
        ]);
        let text = b.render();
        let back = Baseline::parse(&text).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.counts.get("wall-clock"), Some(&2));
        assert_eq!(back.counts.get(HOST_REGION_KEY), Some(&1));
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let b = Baseline::default();
        let back = Baseline::parse(&b.render()).unwrap();
        assert!(back.counts.is_empty());
    }

    #[test]
    fn growth_fails_and_names_the_rule() {
        let committed = Baseline::from_sites(&[site("wall-clock", 1)]);
        let current = Baseline::from_sites(&[site("wall-clock", 1), site("wall-clock", 2)]);
        let outcome = current.check(&committed);
        assert!(!outcome.passed());
        assert!(
            outcome.growth[0].contains("wall-clock"),
            "{:?}",
            outcome.growth
        );
    }

    #[test]
    fn new_rule_waiver_is_growth() {
        let committed = Baseline::default();
        let current = Baseline::from_sites(&[site("sim-io", 4)]);
        assert!(!current.check(&committed).passed());
    }

    #[test]
    fn shrink_passes_and_is_flagged() {
        let committed = Baseline::from_sites(&[site("wall-clock", 1), site("wall-clock", 2)]);
        let current = Baseline::from_sites(&[site("wall-clock", 1)]);
        let outcome = current.check(&committed);
        assert!(outcome.passed());
        assert!(outcome.shrank);
    }

    #[test]
    fn equal_counts_pass_without_shrink() {
        let b = Baseline::from_sites(&[site("wall-clock", 1)]);
        let outcome = b.check(&b.clone());
        assert!(outcome.passed());
        assert!(!outcome.shrank);
    }

    #[test]
    fn waiver_report_lists_sites() {
        let report = render_waiver_report(&[site("wall-clock", 7)]);
        assert!(report.contains("wall-clock: 1 site(s)"));
        assert!(report.contains("crates/core/src/x.rs:7"));
        assert!(report.contains("host-side supervision"));
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"waivers\": {}}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"waivers\": {\"x\": -1}}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"waivers\": {\"x\": \"two\"}}").is_err());
    }
}
