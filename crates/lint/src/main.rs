//! CLI for the determinism auditor.
//!
//! ```text
//! comfase-lint --workspace [--format text|json] [--out FILE] [--root DIR]
//! comfase-lint PATH...     [--format text|json] [--out FILE]
//! comfase-lint --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use comfase_lint::{rules, workspace, Report};

struct Options {
    workspace: bool,
    list_rules: bool,
    json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: comfase-lint (--workspace | PATH...) \
                     [--format text|json] [--out FILE] [--root DIR] [--list-rules]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        list_rules: false,
        json: false,
        out: None,
        root: None,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--list-rules" => opts.list_rules = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects `text` or `json`, got {other:?}")),
            },
            "--out" => match it.next() {
                Some(path) => opts.out = Some(PathBuf::from(path)),
                None => return Err("--out expects a file path".to_string()),
            },
            "--root" => match it.next() {
                Some(path) => opts.root = Some(PathBuf::from(path)),
                None => return Err("--root expects a directory".to_string()),
            },
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}\n{USAGE}")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.list_rules && !opts.workspace && opts.paths.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<Report, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => workspace::find_workspace_root(&cwd)
            .ok_or("no workspace root found above the current directory (try --root)")?,
    };
    if opts.workspace {
        comfase_lint::scan_workspace(&root).map_err(|e| e.to_string())
    } else {
        let mut files = Vec::new();
        for path in &opts.paths {
            if path.is_dir() {
                workspace::collect_rs(path, &mut files).map_err(|e| e.to_string())?;
            } else {
                files.push(path.clone());
            }
        }
        files.sort();
        comfase_lint::scan_files(&root, &files).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!("{:<18} {}", rule.id, rule.summary);
            println!("{:<18}   why: {}", "", rule.why);
        }
        // The annotation meta-rule is reported but can never itself be
        // `allow(...)`-ed, so it lives outside `rules::RULES`.
        println!(
            "{:<18} malformed `comfase-lint:` annotation (missing/empty reason, unknown rule)",
            rules::BAD_ANNOTATION
        );
        println!(
            "{:<18}   why: an exemption without a reviewable justification is a silent hole in the audit",
            ""
        );
        return ExitCode::SUCCESS;
    }

    let report = match run(&opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("comfase-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let rendered = if opts.json {
        report.render_json()
    } else {
        report.render_text()
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("comfase-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // Keep the human-readable summary on stderr so `--out` stays
            // machine-clean on stdout.
            eprintln!(
                "comfase-lint: wrote report ({} violation(s)) to {}",
                report.violations.len(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
