//! CLI for the determinism auditor.
//!
//! ```text
//! comfase-lint --workspace [--format text|json|sarif] [--out FILE] [--root DIR]
//!              [--cache FILE] [--baseline FILE] [--write-baseline FILE]
//!              [--waiver-report]
//! comfase-lint PATH...     [same flags]
//! comfase-lint --list-rules
//! ```
//!
//! Exit codes: `0` clean (and ratchet satisfied), `1` violations found or
//! waiver ratchet exceeded, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use comfase_lint::baseline::{render_waiver_report, Baseline};
use comfase_lint::{rules, workspace, ScanOutput};

struct Options {
    workspace: bool,
    list_rules: bool,
    format: Format,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    cache: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    waiver_report: bool,
    paths: Vec<PathBuf>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

const USAGE: &str = "usage: comfase-lint (--workspace | PATH...) \
                     [--format text|json|sarif] [--out FILE] [--root DIR] \
                     [--cache FILE] [--baseline FILE] [--write-baseline FILE] \
                     [--waiver-report] [--list-rules]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        list_rules: false,
        format: Format::Text,
        out: None,
        root: None,
        cache: None,
        baseline: None,
        write_baseline: None,
        waiver_report: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--list-rules" => opts.list_rules = true,
            "--waiver-report" => opts.waiver_report = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.format = Format::Json,
                Some("text") => opts.format = Format::Text,
                Some("sarif") => opts.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json` or `sarif`, got {other:?}"
                    ))
                }
            },
            "--out" => match it.next() {
                Some(path) => opts.out = Some(PathBuf::from(path)),
                None => return Err("--out expects a file path".to_string()),
            },
            "--root" => match it.next() {
                Some(path) => opts.root = Some(PathBuf::from(path)),
                None => return Err("--root expects a directory".to_string()),
            },
            "--cache" => match it.next() {
                Some(path) => opts.cache = Some(PathBuf::from(path)),
                None => return Err("--cache expects a file path".to_string()),
            },
            "--baseline" => match it.next() {
                Some(path) => opts.baseline = Some(PathBuf::from(path)),
                None => return Err("--baseline expects a file path".to_string()),
            },
            "--write-baseline" => match it.next() {
                Some(path) => opts.write_baseline = Some(PathBuf::from(path)),
                None => return Err("--write-baseline expects a file path".to_string()),
            },
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}\n{USAGE}")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.list_rules && !opts.workspace && opts.paths.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<ScanOutput, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => workspace::find_workspace_root(&cwd)
            .ok_or("no workspace root found above the current directory (try --root)")?,
    };
    let cache = opts.cache.as_deref();
    if opts.workspace {
        comfase_lint::scan_workspace_cached(&root, cache).map_err(|e| e.to_string())
    } else {
        let mut files = Vec::new();
        for path in &opts.paths {
            if path.is_dir() {
                workspace::collect_rs(path, &mut files).map_err(|e| e.to_string())?;
            } else {
                files.push(path.clone());
            }
        }
        files.sort();
        comfase_lint::scan_files_cached(&root, &files, cache).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!("{:<20} {}", rule.id, rule.summary);
            println!("{:<20}   why: {}", "", rule.why);
        }
        // The annotation meta-rule is reported but can never itself be
        // `allow(...)`-ed, so it lives outside `rules::RULES`.
        println!(
            "{:<20} malformed `comfase-lint:` annotation (missing/empty reason, unknown rule)",
            rules::BAD_ANNOTATION
        );
        println!(
            "{:<20}   why: an exemption without a reviewable justification is a silent hole in the audit",
            ""
        );
        return ExitCode::SUCCESS;
    }

    let output = match run(&opts) {
        Ok(output) => output,
        Err(msg) => {
            eprintln!("comfase-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.cache.is_some() {
        eprintln!(
            "comfase-lint: cache: {} reused, {} linted",
            output.stats.cache_hits, output.stats.cache_misses
        );
    }

    let rendered = match opts.format {
        Format::Json => output.report.render_json(),
        Format::Sarif => output.report.render_sarif(),
        Format::Text => output.report.render_text(),
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("comfase-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // Keep the human-readable summary on stderr so `--out` stays
            // machine-clean on stdout.
            eprintln!(
                "comfase-lint: wrote report ({} violation(s)) to {}",
                output.report.violations.len(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }

    if opts.waiver_report {
        print!("{}", render_waiver_report(&output.waivers));
    }

    let current = Baseline::from_sites(&output.waivers);
    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, current.render()) {
            eprintln!("comfase-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("comfase-lint: wrote waiver baseline to {}", path.display());
    }

    let mut ratchet_failed = false;
    if let Some(path) = &opts.baseline {
        let committed = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Baseline::parse(&text))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("comfase-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let outcome = current.check(&committed);
        for msg in &outcome.growth {
            eprintln!("comfase-lint: {msg}");
        }
        if outcome.shrank {
            eprintln!(
                "comfase-lint: waiver counts shrank below the baseline — tighten the ratchet by \
                 regenerating {} with --write-baseline",
                path.display()
            );
        }
        ratchet_failed = !outcome.passed();
    }

    if output.report.is_clean() && !ratchet_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
