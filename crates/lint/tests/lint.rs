//! End-to-end tests for the `comfase-lint` binary.
//!
//! Two layers:
//!
//! 1. **The real workspace is clean** — the auditor run exactly as CI runs it
//!    must find zero violations in the six audited crates. This is the
//!    regression guard: reintroducing a `HashMap` field, an `Instant::now()`
//!    or a `thread_rng()` anywhere in simulation code fails this test.
//! 2. **Fixture corpus** — for every rule there is a fixture where it fires
//!    and one where a well-formed `allow` annotation suppresses it, plus
//!    clean/bad-annotation/test-exemption cases. Fixtures live in
//!    `tests/fixtures/` (not compiled by cargo; only the auditor reads them).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

struct Outcome {
    code: i32,
    stdout: String,
    stderr: String,
}

fn lint(args: &[&str]) -> Outcome {
    let output = Command::new(env!("CARGO_BIN_EXE_comfase-lint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("run comfase-lint");
    Outcome {
        code: output.status.code().expect("exit code"),
        stdout: String::from_utf8(output.stdout).expect("utf-8 stdout"),
        stderr: String::from_utf8(output.stderr).expect("utf-8 stderr"),
    }
}

fn lint_fixture(name: &str) -> Outcome {
    let path = fixture(name);
    lint(&[path.to_str().expect("fixture path")])
}

#[test]
fn real_workspace_has_no_violations() {
    let out = lint(&["--workspace"]);
    assert_eq!(
        out.code, 0,
        "workspace must be determinism-clean, got:\n{}",
        out.stdout
    );
    assert!(
        out.stdout.contains("no determinism violations"),
        "{}",
        out.stdout
    );
}

#[test]
fn hash_collections_fires_and_is_suppressible() {
    let fires = lint_fixture("d1_hash_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[hash-collections]"),
        "{}",
        fires.stdout
    );
    // Both the `use` line and each field/expression site are reported.
    assert!(
        fires.stdout.matches("error[hash-collections]").count() >= 3,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d1_hash_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn wall_clock_fires_and_is_suppressible() {
    let fires = lint_fixture("d2_clock_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[wall-clock]"),
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d2_clock_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn ambient_rng_fires_and_is_suppressible() {
    let fires = lint_fixture("d3_rng_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[ambient-rng]"),
        "{}",
        fires.stdout
    );
    // thread_rng, rand::random, from_entropy: three distinct sites.
    assert!(
        fires.stdout.matches("error[ambient-rng]").count() >= 3,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d3_rng_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn global_state_fires_and_is_suppressible() {
    let fires = lint_fixture("d4_global_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[global-state]"),
        "{}",
        fires.stdout
    );
    // static mut, OnceLock, env::var, env::args: four distinct sites.
    assert!(
        fires.stdout.matches("error[global-state]").count() >= 4,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d4_global_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn float_ordering_fires_and_is_suppressible() {
    let fires = lint_fixture("d5_float_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[float-ordering]"),
        "{}",
        fires.stdout
    );
    // Both `.unwrap()` and `.expect(..)` after `.partial_cmp(..)` fire.
    assert!(
        fires.stdout.matches("error[float-ordering]").count() >= 2,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d5_float_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

/// The telemetry crate (`obs`) sits inside the lint scope: its host
/// profiler is sanctioned by a file-scope `host-region` marker, so a clock
/// read anywhere else in the crate — e.g. a recorder stamping events with
/// host time — still fails the audit.
#[test]
fn obs_telemetry_wall_clock_policy() {
    let fires = lint_fixture("obs_hostprof_clock_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    // Both the `use` and the `Instant::now()` / `elapsed()` sites report.
    assert!(
        fires.stdout.matches("error[wall-clock]").count() >= 2,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("obs_hostprof_clock_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
    assert!(
        allowed.stdout.contains("no determinism violations"),
        "{}",
        allowed.stdout
    );
}

#[test]
fn interior_mutability_fires_and_host_region_sanctions() {
    let fires = lint_fixture("d6_interior_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    // RefCell/Mutex/atomics fire textually; the bare imported `Cell` is
    // only reachable through the use-graph and must report its chain.
    assert!(
        fires.stdout.matches("error[interior-mutability]").count() >= 6,
        "{}",
        fires.stdout
    );
    assert!(
        fires
            .stdout
            .contains("`Cell` resolves to `std::cell::Cell`"),
        "{}",
        fires.stdout
    );
    assert!(fires.stdout.contains("alias chain"), "{}", fires.stdout);

    let allowed = lint_fixture("d6_interior_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn float_reduction_fires_and_order_free_forms_pass() {
    let fires = lint_fixture("d7_float_reduction_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    // Bare `.sum()`, `.sum::<f32>()`, `.fold(0.0, ..)` and `.reduce(..)`
    // over `.values()` are four distinct sites.
    assert!(
        fires.stdout.matches("error[float-reduction]").count() >= 4,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d7_float_reduction_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn sim_io_fires_and_host_region_sanctions() {
    let fires = lint_fixture("d8_sim_io_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    // fs (via the `use fs` alias and fully qualified), stdio macros and
    // thread::spawn: six distinct sites.
    assert!(
        fires.stdout.matches("error[sim-io]").count() >= 6,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d8_sim_io_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn pathological_literals_stay_invisible() {
    let out = lint_fixture("lexer_pathological.rs");
    assert_eq!(out.code, 0, "{}", out.stdout);
    assert!(
        out.stdout.contains("no determinism violations"),
        "{}",
        out.stdout
    );
}

#[test]
fn clean_fixture_is_clean() {
    let out = lint_fixture("clean.rs");
    assert_eq!(out.code, 0, "{}", out.stdout);
    assert!(
        out.stdout.contains("no determinism violations"),
        "{}",
        out.stdout
    );
}

#[test]
fn malformed_annotations_are_violations_and_do_not_suppress() {
    let out = lint_fixture("bad_annotation.rs");
    assert_eq!(out.code, 1, "{}", out.stdout);
    // The underlying rule still fires (the annotation was ineffective)...
    assert!(
        out.stdout.contains("error[hash-collections]"),
        "{}",
        out.stdout
    );
    // ...and each malformed annotation is reported in its own right:
    // missing reason, empty reason, unknown rule name.
    assert!(
        out.stdout.matches("error[bad-annotation]").count() >= 3,
        "{}",
        out.stdout
    );
}

#[test]
fn test_code_is_exempt() {
    let out = lint_fixture("test_exempt.rs");
    assert_eq!(out.code, 0, "{}", out.stdout);
}

#[test]
fn fixture_directory_scan_aggregates() {
    let dir = fixture("");
    let out = lint(&[dir.to_str().expect("fixtures dir")]);
    assert_eq!(out.code, 1);
    for rule in [
        "hash-collections",
        "wall-clock",
        "ambient-rng",
        "global-state",
        "float-ordering",
        "interior-mutability",
        "float-reduction",
        "sim-io",
        "bad-annotation",
    ] {
        assert!(
            out.stdout.contains(&format!("error[{rule}]")),
            "rule {rule} missing from aggregate scan:\n{}",
            out.stdout
        );
    }
}

#[test]
fn json_report_shape() {
    let path = fixture("d1_hash_fires.rs");
    let out = lint(&["--format", "json", path.to_str().expect("fixture path")]);
    assert_eq!(out.code, 1);
    assert!(out.stdout.contains("\"version\": 1"), "{}", out.stdout);
    assert!(
        out.stdout.contains("\"files_scanned\": 1"),
        "{}",
        out.stdout
    );
    assert!(
        out.stdout.contains("\"rule\": \"hash-collections\""),
        "{}",
        out.stdout
    );
    assert!(out.stdout.contains("\"line\": "), "{}", out.stdout);
    // The declared count matches the number of violation objects. (Brace
    // balancing would be misleading here: snippets may contain `{`.)
    let declared: usize = out
        .stdout
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"violation_count\": "))
        .and_then(|n| n.trim_end_matches(',').parse().ok())
        .expect("violation_count field");
    assert_eq!(out.stdout.matches("\"rule\": ").count(), declared);
    assert!(declared >= 3, "{}", out.stdout);
    assert!(out.stdout.trim_end().ends_with('}'), "{}", out.stdout);
}

#[test]
fn out_flag_writes_report_file() {
    let report = std::env::temp_dir().join(format!("comfase-lint-{}.json", std::process::id()));
    let path = fixture("clean.rs");
    let out = lint(&[
        "--format",
        "json",
        "--out",
        report.to_str().expect("report path"),
        path.to_str().expect("fixture path"),
    ]);
    assert_eq!(out.code, 0, "{}", out.stderr);
    assert!(
        out.stdout.is_empty(),
        "stdout stays machine-clean with --out"
    );
    assert!(out.stderr.contains("wrote report"), "{}", out.stderr);
    let written = std::fs::read_to_string(&report).expect("report file");
    assert!(written.contains("\"violation_count\": 0"), "{written}");
    std::fs::remove_file(&report).ok();
}

#[test]
fn list_rules_covers_all_rules() {
    let out = lint(&["--list-rules"]);
    assert_eq!(out.code, 0);
    for rule in [
        "hash-collections",
        "wall-clock",
        "ambient-rng",
        "global-state",
        "float-ordering",
        "interior-mutability",
        "float-reduction",
        "sim-io",
        "bad-annotation",
    ] {
        assert!(out.stdout.contains(rule), "{rule} missing:\n{}", out.stdout);
    }
}

#[test]
fn usage_errors_exit_two() {
    let none = lint(&[]);
    assert_eq!(none.code, 2);
    assert!(none.stderr.contains("usage:"), "{}", none.stderr);

    let unknown = lint(&["--frobnicate"]);
    assert_eq!(unknown.code, 2);
    assert!(
        unknown.stderr.contains("unknown flag"),
        "{}",
        unknown.stderr
    );
}

// ---------------------------------------------------------------------------
// Seeded mutations of real workspace sources
// ---------------------------------------------------------------------------

/// Fresh scratch directory under the target temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comfase-lint-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Smuggling a `RefCell` field into the real `World` struct is caught.
#[test]
fn seeded_refcell_in_world_is_caught() {
    let source = std::fs::read_to_string(workspace_root().join("crates/core/src/world.rs"))
        .expect("world.rs");
    let mutated = source.replace(
        "pub struct World {",
        "pub struct World {\n    scratch: std::cell::RefCell<Vec<f64>>,",
    );
    assert_ne!(mutated, source, "seed marker not found in world.rs");
    let dir = scratch("seed-world");
    let path = dir.join("world.rs");
    std::fs::write(&path, mutated).expect("write mutated world.rs");
    let out = lint(&[path.to_str().expect("path")]);
    assert_eq!(out.code, 1, "{}", out.stdout);
    assert!(
        out.stdout.contains("error[interior-mutability]"),
        "{}",
        out.stdout
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A banned type laundered through a cross-file rename is resolved
/// transitively and the diagnostic names every hop.
#[test]
fn seeded_aliased_hashmap_is_caught_across_files() {
    let dir = scratch("seed-alias");
    let src = dir.join("crates/des/src");
    std::fs::create_dir_all(&src).expect("fake crate layout");
    std::fs::write(
        src.join("maps.rs"),
        "pub use std::collections::HashMap as FastMap;\n",
    )
    .expect("maps.rs");
    std::fs::write(
        src.join("state.rs"),
        "use crate::maps::FastMap;\npub struct Queue {\n    pub pending: FastMap<u64, u64>,\n}\n",
    )
    .expect("state.rs");
    let out = lint(&[
        "--root",
        dir.to_str().expect("root"),
        src.join("maps.rs").to_str().expect("path"),
        src.join("state.rs").to_str().expect("path"),
    ]);
    assert_eq!(out.code, 1, "{}", out.stdout);
    let report = &out.stdout;
    assert!(report.contains("error[hash-collections]"), "{report}");
    assert!(
        report.contains("resolves to `std::collections::HashMap`"),
        "{report}"
    );
    assert!(report.contains("alias chain"), "{report}");
    assert!(report.contains("maps.rs"), "{report}");
    // The usage site in state.rs is reported, not just the re-export.
    assert!(report.contains("state.rs:3"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Dropping the integer turbofish from a real reduction site is caught.
#[test]
fn seeded_untyped_sum_over_map_values_is_caught() {
    let source = std::fs::read_to_string(workspace_root().join("crates/core/src/analysis.rs"))
        .expect("analysis.rs");
    let mutated = source.replace(".sum::<usize>()", ".sum()");
    assert_ne!(mutated, source, "seed marker not found in analysis.rs");
    let dir = scratch("seed-sum");
    let path = dir.join("analysis.rs");
    std::fs::write(&path, mutated).expect("write mutated analysis.rs");
    let out = lint(&[path.to_str().expect("path")]);
    assert_eq!(out.code, 1, "{}", out.stdout);
    assert!(
        out.stdout.contains("error[float-reduction]"),
        "{}",
        out.stdout
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Waiver ratchet
// ---------------------------------------------------------------------------

/// `d7_float_reduction_allowed.rs` carries exactly one `allow` site; a
/// baseline that caps it at one passes without noise.
#[test]
fn ratchet_respected_baseline_passes() {
    let dir = scratch("ratchet-ok");
    let baseline = dir.join("lint-baseline.json");
    std::fs::write(
        &baseline,
        "{\n  \"version\": 1,\n  \"waivers\": {\n    \"float-reduction\": 1\n  }\n}\n",
    )
    .expect("baseline");
    let path = fixture("d7_float_reduction_allowed.rs");
    let out = lint(&[
        "--baseline",
        baseline.to_str().expect("baseline"),
        path.to_str().expect("fixture"),
    ]);
    assert_eq!(out.code, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(!out.stderr.contains("waiver ratchet"), "{}", out.stderr);
    std::fs::remove_dir_all(&dir).ok();
}

/// The same fixture against an empty baseline is waiver *growth*: the lint
/// fails even though no rule fires.
#[test]
fn ratchet_growth_is_rejected() {
    let dir = scratch("ratchet-grow");
    let baseline = dir.join("lint-baseline.json");
    std::fs::write(&baseline, "{\n  \"version\": 1,\n  \"waivers\": {}\n}\n").expect("baseline");
    let path = fixture("d7_float_reduction_allowed.rs");
    let out = lint(&[
        "--baseline",
        baseline.to_str().expect("baseline"),
        path.to_str().expect("fixture"),
    ]);
    assert_eq!(out.code, 1, "{}\n{}", out.stdout, out.stderr);
    assert!(out.stderr.contains("waiver ratchet"), "{}", out.stderr);
    assert!(out.stderr.contains("float-reduction"), "{}", out.stderr);
    std::fs::remove_dir_all(&dir).ok();
}

/// When waivers drop below the baseline the run passes but suggests
/// tightening the committed file.
#[test]
fn ratchet_shrink_suggests_tightening() {
    let dir = scratch("ratchet-shrink");
    let baseline = dir.join("lint-baseline.json");
    std::fs::write(
        &baseline,
        "{\n  \"version\": 1,\n  \"waivers\": {\n    \"float-reduction\": 3\n  }\n}\n",
    )
    .expect("baseline");
    let path = fixture("d7_float_reduction_allowed.rs");
    let out = lint(&[
        "--baseline",
        baseline.to_str().expect("baseline"),
        path.to_str().expect("fixture"),
    ]);
    assert_eq!(out.code, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(out.stderr.contains("shrank"), "{}", out.stderr);
    assert!(out.stderr.contains("--write-baseline"), "{}", out.stderr);
    std::fs::remove_dir_all(&dir).ok();
}

/// `--write-baseline` emits a file that `--baseline` then accepts, and the
/// `--waiver-report` enumerates the site with its reason.
#[test]
fn write_baseline_round_trips_and_waiver_report_lists_sites() {
    let dir = scratch("ratchet-roundtrip");
    let baseline = dir.join("lint-baseline.json");
    let path = fixture("d7_float_reduction_allowed.rs");
    let write = lint(&[
        "--write-baseline",
        baseline.to_str().expect("baseline"),
        "--waiver-report",
        path.to_str().expect("fixture"),
    ]);
    assert_eq!(write.code, 0, "{}\n{}", write.stdout, write.stderr);
    assert!(
        write.stdout.contains("float-reduction: 1 site(s)"),
        "{}",
        write.stdout
    );
    assert!(
        write.stdout.contains("exact small integers"),
        "waiver report must carry the reason:\n{}",
        write.stdout
    );
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("\"float-reduction\": 1"), "{text}");

    let check = lint(&[
        "--baseline",
        baseline.to_str().expect("baseline"),
        path.to_str().expect("fixture"),
    ]);
    assert_eq!(check.code, 0, "{}\n{}", check.stdout, check.stderr);
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed repo baseline matches the tree: the workspace audit run
/// exactly as CI runs it (ratchet active) passes.
#[test]
fn committed_baseline_matches_workspace() {
    let out = lint(&["--workspace", "--baseline", "lint-baseline.json"]);
    assert_eq!(out.code, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(!out.stderr.contains("waiver ratchet"), "{}", out.stderr);
}

// ---------------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------------

#[test]
fn sarif_output_is_valid_json_with_rules_and_results() {
    let path = fixture("d1_hash_fires.rs");
    let out = lint(&["--format", "sarif", path.to_str().expect("fixture")]);
    assert_eq!(out.code, 1);
    let root = comfase_lint::json::parse(&out.stdout).expect("SARIF must parse as JSON");
    assert_eq!(
        root.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "{}",
        out.stdout
    );
    let runs = root.get("runs").and_then(|v| v.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("driver");
    assert_eq!(
        driver.get("name").and_then(|v| v.as_str()),
        Some("comfase-lint")
    );
    let rules = driver
        .get("rules")
        .and_then(|v| v.as_array())
        .expect("rules");
    // D1–D8 plus the bad-annotation meta-rule.
    assert_eq!(rules.len(), 9, "{}", out.stdout);
    let results = runs[0]
        .get("results")
        .and_then(|v| v.as_array())
        .expect("results");
    assert!(!results.is_empty());
    for result in results {
        assert_eq!(
            result.get("ruleId").and_then(|v| v.as_str()),
            Some("hash-collections")
        );
        let region = result
            .get("locations")
            .and_then(|l| l.as_array())
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .expect("physicalLocation");
        assert!(region.get("artifactLocation").is_some());
    }
}

// ---------------------------------------------------------------------------
// Incremental cache
// ---------------------------------------------------------------------------

fn stat_line(stderr: &str) -> &str {
    stderr
        .lines()
        .find(|l| l.contains("cache:"))
        .unwrap_or_else(|| panic!("no cache stat line in: {stderr}"))
}

/// Cold → warm → edit: the cache reuses unchanged files, re-lints only the
/// edited one, and the report stays byte-identical when findings don't
/// change.
#[test]
fn cache_relints_only_changed_files_with_identical_report() {
    let dir = scratch("cache-edit");
    for name in ["d1_hash_fires.rs", "clean.rs"] {
        std::fs::copy(fixture(name), dir.join(name)).expect("copy fixture");
    }
    let cache = dir.join(".lint-cache.json");
    let cache_arg = cache.to_str().expect("cache").to_string();
    let dir_arg = dir.to_str().expect("dir").to_string();

    let cold = lint(&["--cache", &cache_arg, &dir_arg]);
    assert_eq!(cold.code, 1, "{}", cold.stdout);
    assert!(
        stat_line(&cold.stderr).contains("0 reused, 2 linted"),
        "{}",
        cold.stderr
    );

    let warm = lint(&["--cache", &cache_arg, &dir_arg]);
    assert_eq!(warm.code, 1);
    assert!(
        stat_line(&warm.stderr).contains("2 reused, 0 linted"),
        "{}",
        warm.stderr
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm report must be byte-identical"
    );

    // Append a trailing comment to one file: its hash changes, findings
    // don't, so exactly one file re-lints and the report stays identical.
    let clean = dir.join("clean.rs");
    let mut text = std::fs::read_to_string(&clean).expect("clean.rs");
    text.push_str("// trailing comment\n");
    std::fs::write(&clean, text).expect("edit clean.rs");

    let edited = lint(&["--cache", &cache_arg, &dir_arg]);
    assert_eq!(edited.code, 1);
    assert!(
        stat_line(&edited.stderr).contains("1 reused, 1 linted"),
        "{}",
        edited.stderr
    );
    assert_eq!(cold.stdout, edited.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

/// The warm whole-workspace audit finishes in <100 ms with a report
/// byte-identical to the cold run (the ISSUE's speed acceptance bar).
#[test]
fn warm_workspace_lint_is_fast_and_identical() {
    let dir = scratch("cache-warm");
    let cache = dir.join(".lint-cache.json");
    let cache_arg = cache.to_str().expect("cache").to_string();

    let cold = lint(&["--workspace", "--cache", &cache_arg]);
    assert_eq!(cold.code, 0, "{}", cold.stdout);

    let started = std::time::Instant::now();
    let warm = lint(&["--workspace", "--cache", &cache_arg]);
    let elapsed = started.elapsed();
    assert_eq!(warm.code, 0, "{}", warm.stdout);
    assert!(
        stat_line(&warm.stderr).ends_with("0 linted"),
        "{}",
        warm.stderr
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm report must be byte-identical"
    );
    assert!(
        elapsed.as_millis() < 100,
        "warm workspace lint took {elapsed:?} (must be <100 ms)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt cache file is ignored, not fatal — the scan falls back to a
/// cold lint and rewrites the cache.
#[test]
fn corrupt_cache_is_ignored() {
    let dir = scratch("cache-corrupt");
    let cache = dir.join(".lint-cache.json");
    std::fs::write(&cache, "{definitely not json").expect("corrupt cache");
    let path = fixture("clean.rs");
    let out = lint(&[
        "--cache",
        cache.to_str().expect("cache"),
        path.to_str().expect("fixture"),
    ]);
    assert_eq!(out.code, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(
        stat_line(&out.stderr).contains("0 reused, 1 linted"),
        "{}",
        out.stderr
    );
    let rewritten = std::fs::read_to_string(&cache).expect("cache rewritten");
    assert!(rewritten.starts_with('{'), "{rewritten}");
    std::fs::remove_dir_all(&dir).ok();
}
