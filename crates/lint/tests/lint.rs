//! End-to-end tests for the `comfase-lint` binary.
//!
//! Two layers:
//!
//! 1. **The real workspace is clean** — the auditor run exactly as CI runs it
//!    must find zero violations in the six audited crates. This is the
//!    regression guard: reintroducing a `HashMap` field, an `Instant::now()`
//!    or a `thread_rng()` anywhere in simulation code fails this test.
//! 2. **Fixture corpus** — for every rule there is a fixture where it fires
//!    and one where a well-formed `allow` annotation suppresses it, plus
//!    clean/bad-annotation/test-exemption cases. Fixtures live in
//!    `tests/fixtures/` (not compiled by cargo; only the auditor reads them).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

struct Outcome {
    code: i32,
    stdout: String,
    stderr: String,
}

fn lint(args: &[&str]) -> Outcome {
    let output = Command::new(env!("CARGO_BIN_EXE_comfase-lint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("run comfase-lint");
    Outcome {
        code: output.status.code().expect("exit code"),
        stdout: String::from_utf8(output.stdout).expect("utf-8 stdout"),
        stderr: String::from_utf8(output.stderr).expect("utf-8 stderr"),
    }
}

fn lint_fixture(name: &str) -> Outcome {
    let path = fixture(name);
    lint(&[path.to_str().expect("fixture path")])
}

#[test]
fn real_workspace_has_no_violations() {
    let out = lint(&["--workspace"]);
    assert_eq!(
        out.code, 0,
        "workspace must be determinism-clean, got:\n{}",
        out.stdout
    );
    assert!(
        out.stdout.contains("no determinism violations"),
        "{}",
        out.stdout
    );
}

#[test]
fn hash_collections_fires_and_is_suppressible() {
    let fires = lint_fixture("d1_hash_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[hash-collections]"),
        "{}",
        fires.stdout
    );
    // Both the `use` line and each field/expression site are reported.
    assert!(
        fires.stdout.matches("error[hash-collections]").count() >= 3,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d1_hash_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn wall_clock_fires_and_is_suppressible() {
    let fires = lint_fixture("d2_clock_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[wall-clock]"),
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d2_clock_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn ambient_rng_fires_and_is_suppressible() {
    let fires = lint_fixture("d3_rng_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[ambient-rng]"),
        "{}",
        fires.stdout
    );
    // thread_rng, rand::random, from_entropy: three distinct sites.
    assert!(
        fires.stdout.matches("error[ambient-rng]").count() >= 3,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d3_rng_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn global_state_fires_and_is_suppressible() {
    let fires = lint_fixture("d4_global_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[global-state]"),
        "{}",
        fires.stdout
    );
    // static mut, OnceLock, env::var, env::args: four distinct sites.
    assert!(
        fires.stdout.matches("error[global-state]").count() >= 4,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d4_global_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

#[test]
fn float_ordering_fires_and_is_suppressible() {
    let fires = lint_fixture("d5_float_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    assert!(
        fires.stdout.contains("error[float-ordering]"),
        "{}",
        fires.stdout
    );
    // Both `.unwrap()` and `.expect(..)` after `.partial_cmp(..)` fire.
    assert!(
        fires.stdout.matches("error[float-ordering]").count() >= 2,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("d5_float_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
}

/// The telemetry crate (`obs`) sits inside the lint scope: its host
/// profiler is waived per clock-read site, so a clock read anywhere else
/// in the crate — e.g. a recorder stamping events with host time — still
/// fails the audit.
#[test]
fn obs_telemetry_wall_clock_policy() {
    let fires = lint_fixture("obs_hostprof_clock_fires.rs");
    assert_eq!(fires.code, 1, "{}", fires.stdout);
    // Both the `use` and the `Instant::now()` / `elapsed()` sites report.
    assert!(
        fires.stdout.matches("error[wall-clock]").count() >= 2,
        "{}",
        fires.stdout
    );

    let allowed = lint_fixture("obs_hostprof_clock_allowed.rs");
    assert_eq!(allowed.code, 0, "{}", allowed.stdout);
    assert!(
        allowed.stdout.contains("no determinism violations"),
        "{}",
        allowed.stdout
    );
}

#[test]
fn clean_fixture_is_clean() {
    let out = lint_fixture("clean.rs");
    assert_eq!(out.code, 0, "{}", out.stdout);
    assert!(
        out.stdout.contains("no determinism violations"),
        "{}",
        out.stdout
    );
}

#[test]
fn malformed_annotations_are_violations_and_do_not_suppress() {
    let out = lint_fixture("bad_annotation.rs");
    assert_eq!(out.code, 1, "{}", out.stdout);
    // The underlying rule still fires (the annotation was ineffective)...
    assert!(
        out.stdout.contains("error[hash-collections]"),
        "{}",
        out.stdout
    );
    // ...and each malformed annotation is reported in its own right:
    // missing reason, empty reason, unknown rule name.
    assert!(
        out.stdout.matches("error[bad-annotation]").count() >= 3,
        "{}",
        out.stdout
    );
}

#[test]
fn test_code_is_exempt() {
    let out = lint_fixture("test_exempt.rs");
    assert_eq!(out.code, 0, "{}", out.stdout);
}

#[test]
fn fixture_directory_scan_aggregates() {
    let dir = fixture("");
    let out = lint(&[dir.to_str().expect("fixtures dir")]);
    assert_eq!(out.code, 1);
    for rule in [
        "hash-collections",
        "wall-clock",
        "ambient-rng",
        "global-state",
        "float-ordering",
        "bad-annotation",
    ] {
        assert!(
            out.stdout.contains(&format!("error[{rule}]")),
            "rule {rule} missing from aggregate scan:\n{}",
            out.stdout
        );
    }
}

#[test]
fn json_report_shape() {
    let path = fixture("d1_hash_fires.rs");
    let out = lint(&["--format", "json", path.to_str().expect("fixture path")]);
    assert_eq!(out.code, 1);
    assert!(out.stdout.contains("\"version\": 1"), "{}", out.stdout);
    assert!(
        out.stdout.contains("\"files_scanned\": 1"),
        "{}",
        out.stdout
    );
    assert!(
        out.stdout.contains("\"rule\": \"hash-collections\""),
        "{}",
        out.stdout
    );
    assert!(out.stdout.contains("\"line\": "), "{}", out.stdout);
    // The declared count matches the number of violation objects. (Brace
    // balancing would be misleading here: snippets may contain `{`.)
    let declared: usize = out
        .stdout
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"violation_count\": "))
        .and_then(|n| n.trim_end_matches(',').parse().ok())
        .expect("violation_count field");
    assert_eq!(out.stdout.matches("\"rule\": ").count(), declared);
    assert!(declared >= 3, "{}", out.stdout);
    assert!(out.stdout.trim_end().ends_with('}'), "{}", out.stdout);
}

#[test]
fn out_flag_writes_report_file() {
    let report = std::env::temp_dir().join(format!("comfase-lint-{}.json", std::process::id()));
    let path = fixture("clean.rs");
    let out = lint(&[
        "--format",
        "json",
        "--out",
        report.to_str().expect("report path"),
        path.to_str().expect("fixture path"),
    ]);
    assert_eq!(out.code, 0, "{}", out.stderr);
    assert!(
        out.stdout.is_empty(),
        "stdout stays machine-clean with --out"
    );
    assert!(out.stderr.contains("wrote report"), "{}", out.stderr);
    let written = std::fs::read_to_string(&report).expect("report file");
    assert!(written.contains("\"violation_count\": 0"), "{written}");
    std::fs::remove_file(&report).ok();
}

#[test]
fn list_rules_covers_all_rules() {
    let out = lint(&["--list-rules"]);
    assert_eq!(out.code, 0);
    for rule in [
        "hash-collections",
        "wall-clock",
        "ambient-rng",
        "global-state",
        "float-ordering",
        "bad-annotation",
    ] {
        assert!(out.stdout.contains(rule), "{rule} missing:\n{}", out.stdout);
    }
}

#[test]
fn usage_errors_exit_two() {
    let none = lint(&[]);
    assert_eq!(none.code, 2);
    assert!(none.stderr.contains("usage:"), "{}", none.stderr);

    let unknown = lint(&["--frobnicate"]);
    assert_eq!(unknown.code, 2);
    assert!(
        unknown.stderr.contains("unknown flag"),
        "{}",
        unknown.stderr
    );
}
