//! Property tests hammering the lexer with pathological literal shapes.
//!
//! The auditor's soundness rests on one lexer invariant: *text inside
//! string/byte/char literals and comments is invisible, and text outside
//! them is never swallowed*. A literal that leaks fabricates violations; a
//! literal that over-consumes hides real ones. These properties generate
//! adversarial combinations (raw strings with arbitrary hash fences, nested
//! block comments, char literals holding `/` or `'`) that hand-written
//! fixtures historically missed.

use comfase_lint::lexer::{lex, TokenKind};

use proptest::prelude::*;

/// Identifier tokens of `src`, as strings.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// A marker identifier that cannot collide with surrounding syntax.
fn marker(stem: &str) -> String {
    format!("XQmark{stem}")
}

proptest! {
    /// The lexer is total: arbitrary input (including unterminated
    /// literals and stray quotes) never panics.
    #[test]
    fn lexing_never_panics(src in "\\PC{0,200}") {
        let _ = lex(&src);
    }

    /// Token line numbers are nondecreasing, so every downstream line-range
    /// computation (allow scopes, host regions, test spans) is well-founded.
    #[test]
    fn token_lines_are_nondecreasing(src in "\\PC{0,200}") {
        let lexed = lex(&src);
        for pair in lexed.tokens.windows(2) {
            prop_assert!(pair[0].line <= pair[1].line);
        }
    }

    /// Identifiers inside plain string literals never become tokens, and
    /// identifiers outside them always do.
    #[test]
    fn string_contents_are_invisible(stem in "[a-z]{1,8}") {
        let hidden = marker(&stem);
        let visible = marker("visible");
        let src = format!("let {visible} = \"{hidden} HashMap\";");
        let ids = idents(&src);
        prop_assert!(ids.contains(&visible), "{ids:?}");
        prop_assert!(!ids.contains(&hidden), "{ids:?}");
        prop_assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
    }

    /// Raw strings hide their contents for any fence width, and the fence
    /// terminates exactly at the matching hash count — the next identifier
    /// survives.
    #[test]
    fn raw_string_fences_balance(stem in "[a-z]{1,8}", hashes in 0usize..4) {
        let hidden = marker(&stem);
        let after = marker("after");
        let fence = "#".repeat(hashes);
        // Embed a shorter fence inside the literal when possible: it must
        // not terminate the string early.
        let inner = if hashes > 0 { format!("\"{}", "#".repeat(hashes - 1)) } else { String::new() };
        let src = format!("let x = r{fence}\"{hidden} {inner}\"{fence}; {after}");
        let ids = idents(&src);
        prop_assert!(!ids.contains(&hidden), "{src:?} -> {ids:?}");
        prop_assert!(ids.contains(&after), "{src:?} -> {ids:?}");
    }

    /// Byte strings (plain and raw) are as invisible as their `str`
    /// counterparts.
    #[test]
    fn byte_string_contents_are_invisible(stem in "[a-z]{1,8}", raw in any::<bool>()) {
        let hidden = marker(&stem);
        let after = marker("after");
        let src = if raw {
            format!("let x = br#\"{hidden}\"#; {after}")
        } else {
            format!("let x = b\"{hidden}\"; {after}")
        };
        let ids = idents(&src);
        prop_assert!(!ids.contains(&hidden), "{src:?} -> {ids:?}");
        prop_assert!(ids.contains(&after), "{src:?} -> {ids:?}");
    }

    /// Block comments nest to arbitrary depth; the comment ends only when
    /// every level is closed, and code after it survives.
    #[test]
    fn nested_block_comments_hide_contents(stem in "[a-z]{1,8}", depth in 1usize..5) {
        let hidden = marker(&stem);
        let after = marker("after");
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("{open} {hidden} thread_rng() {close} {after}");
        let ids = idents(&src);
        prop_assert!(!ids.contains(&hidden), "{src:?} -> {ids:?}");
        prop_assert!(!ids.iter().any(|i| i == "thread_rng"), "{src:?} -> {ids:?}");
        prop_assert!(ids.contains(&after), "{src:?} -> {ids:?}");
    }

    /// A char literal holding any single printable char — `/` and `'`
    /// (escaped) included — neither leaks tokens nor swallows what follows.
    /// The `'/'` case is the historical trap: a naive scanner treats the
    /// rest of the line as a `//` comment.
    #[test]
    fn char_literals_do_not_open_comments(c in proptest::char::range(' ', '~')) {
        let after = marker("after");
        let lit = match c {
            '\'' => "\\'".to_string(),
            '\\' => "\\\\".to_string(),
            c => c.to_string(),
        };
        let src = format!("let sep = '{lit}'; {after}");
        let ids = idents(&src);
        prop_assert!(ids.contains(&after), "{src:?} -> {ids:?}");
    }

    /// Lifetimes (`'a`) are not char literals: the tick must not swallow
    /// the rest of the signature.
    #[test]
    fn lifetimes_do_not_swallow_code(stem in "[a-z]{1,6}") {
        let after = marker("after");
        let src = format!("fn f<'{stem}>(x: &'{stem} u32) {{ {after}; }}");
        let ids = idents(&src);
        prop_assert!(ids.contains(&after), "{src:?} -> {ids:?}");
    }
}
