//! Fixture: rule `ambient-rng` must fire on OS-entropy randomness.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn coin() -> bool {
    rand::random()
}

pub fn seeded() -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::from_entropy()
}
