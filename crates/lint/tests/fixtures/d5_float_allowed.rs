//! Fixture: rule `float-ordering` suppressed by a well-formed annotation.

pub fn sort_checked(xs: &mut [f64]) {
    debug_assert!(xs.iter().all(|x| !x.is_nan()));
    // comfase-lint: allow(float-ordering, reason = "inputs asserted NaN-free one line up")
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
