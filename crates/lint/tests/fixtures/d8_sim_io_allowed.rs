//! D8 allowed pair: strings are built with `fmt`, and the one real write
//! is quarantined to an item-scope `host-region`.

use std::fmt::Write as _;

pub fn render(points: &[f64]) -> String {
    let mut out = String::new();
    for p in points {
        let _ = writeln!(out, "{p}");
    }
    out
}

// comfase-lint: host-region(reason = "fixture: campaign-boundary artifact writer, invoked once after the deterministic run completes")
pub fn persist(report: &str) {
    std::fs::write("report.json", report).unwrap();
}
