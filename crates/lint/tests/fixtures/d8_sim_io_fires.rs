//! D8 fixture: host I/O reached from simulation code.

use std::fs;

pub fn dump_points(points: &[f64]) {
    let mut out = String::new();
    for p in points {
        out.push_str(&format!("{p}\n"));
    }
    fs::write("points.txt", out).unwrap();
    println!("wrote {} points", points.len());
}

pub fn spawn_helper() {
    std::thread::spawn(|| {});
}

pub fn read_side_channel() -> String {
    eprintln!("reading side channel");
    std::fs::read_to_string("config.json").unwrap_or_default()
}
