// comfase-lint: host-region(reason = "fixture: host-side supervision mailbox; results are re-ordered by experiment index before any metric is computed")

//! D6 allowed pair: the same shapes, sanctioned as host-side supervision
//! state by a file-scope `host-region` marker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct HostMailbox {
    results: Mutex<Vec<(u64, f64)>>,
    claimed: AtomicU64,
}

pub fn claim(mailbox: &HostMailbox) -> u64 {
    mailbox.claimed.fetch_add(1, Ordering::Relaxed)
}
