//! Fixture: rule `wall-clock` suppressed by a well-formed annotation.

pub fn wall_elapsed() -> std::time::Duration {
    // comfase-lint: allow(wall-clock, reason = "progress reporting only, never fed into the sim")
    let start = std::time::Instant::now();
    start.elapsed()
}
