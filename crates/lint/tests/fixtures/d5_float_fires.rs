//! Fixture: rule `float-ordering` must fire on unwrap'd partial comparisons.

pub fn sort_positions(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn max_gap(gaps: &[f64]) -> Option<f64> {
    gaps.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("gap comparison"))
}
