//! Fixture: malformed or ineffective allow annotations are violations
//! themselves, on top of the rule they failed to suppress.

// comfase-lint: allow(hash-collections)
use std::collections::HashMap;

pub struct A {
    // comfase-lint: allow(hash-collections, reason = "")
    m: HashMap<u64, u64>,
}

pub struct B {
    // comfase-lint: allow(no-such-rule, reason = "typo in the rule name")
    s: std::collections::HashSet<u64>,
}
