//! Fixture: the `wall-clock` rule keeps firing inside the telemetry crate
//! scope. A recorder that stamps sim events with the host clock is exactly
//! the bug the rule exists to catch — the waiver on the host profiler must
//! not bleed over to recorder code.

use std::time::Instant;

pub struct LeakyRecorder {
    started: Instant,
    pub events: Vec<(u128, &'static str)>,
}

impl LeakyRecorder {
    pub fn new() -> Self {
        LeakyRecorder {
            started: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Wrong: timestamps telemetry with elapsed host time instead of the
    /// simulation clock, so the "deterministic" artifact varies per host.
    pub fn record(&mut self, name: &'static str) {
        self.events.push((self.started.elapsed().as_nanos(), name));
    }
}
