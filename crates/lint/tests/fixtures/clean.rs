//! Fixture: idiomatic deterministic simulation code — zero violations.

use std::collections::{BTreeMap, BTreeSet};

pub struct World {
    nodes: BTreeMap<u64, f64>,
    quarantined: BTreeSet<u64>,
}

pub fn sort_positions(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn furthest(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

/// A doc-comment mentioning HashMap, Instant::now() and thread_rng() must
/// not fire — comments are not code.
pub fn documented() {}

pub fn strings_are_not_code() -> &'static str {
    "HashMap::new() and SystemTime::now() inside a string literal"
}
