//! D7 allowed pair: order-independent reductions over the same maps.

use std::collections::BTreeMap;

pub fn total_packets(counts: &BTreeMap<u32, u64>) -> u64 {
    // Integer turbofish: addition is associative, order cannot matter.
    counts.values().sum::<u64>()
}

pub fn worst_delay(delays: &BTreeMap<u32, f64>) -> f64 {
    // `max` is order-free, so the fold is sanctioned.
    delays.values().fold(f64::NEG_INFINITY, |a, b| a.max(*b))
}

pub fn indexed_total(samples: &[f64]) -> f64 {
    // Slice iteration is index-ordered: the accumulation order is pinned.
    samples.iter().sum()
}

pub fn waived_total(delays: &BTreeMap<u32, f64>) -> f64 {
    // comfase-lint: allow(float-reduction, reason = "fixture: values are exact small integers stored as f64, so addition is associative at these magnitudes")
    delays.values().sum()
}
