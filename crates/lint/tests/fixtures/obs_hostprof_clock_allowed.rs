//! Fixture: the host-profiler shape of the telemetry crate — every clock
//! read carries its own reasoned waiver, so the file is clean while the
//! rule stays armed for the rest of the crate.

// comfase-lint: allow(wall-clock, reason = "host-side profiler; measures runner phases, never sim state")
use std::time::Instant;

pub struct PhaseProfiler {
    // comfase-lint: allow(wall-clock, reason = "host-side profiler; open phase start stamps")
    open: Vec<(String, Instant)>,
    finished: Vec<(String, f64)>,
}

impl PhaseProfiler {
    pub fn begin(&mut self, name: &str) {
        // comfase-lint: allow(wall-clock, reason = "host-side profiler; the one sanctioned clock read")
        self.open.push((name.to_string(), Instant::now()));
    }

    pub fn end(&mut self, name: &str) {
        if let Some(pos) = self.open.iter().rposition(|(n, _)| n == name) {
            let (name, started) = self.open.remove(pos);
            self.finished.push((name, started.elapsed().as_secs_f64()));
        }
    }
}
