//! Lexer-hardening fixture: banned identifiers inside literals and
//! comments must be invisible to every rule, and a char literal holding
//! `/` must not open a line comment. This file is clean.

pub fn literals() -> (&'static str, &'static [u8], char, &'static str) {
    let nested = /* outer /* HashMap::new() thread_rng() */ still a comment */ "done";
    let _ = nested;
    (
        r#"use std::collections::HashMap; // Instant::now()"#,
        b"SystemTime::now() RefCell<Mutex<u8>>",
        '/',
        "std::fs::write(\"x\") // println!(\"leak\")",
    )
}

pub fn char_slash_and_raw_hashes() -> usize {
    let sep = '/';
    let escaped = '\'';
    let raw = r##"AtomicU64 r#"std::thread::spawn"# .values().sum::<f64>()"##;
    let bytes = br#"rand::thread_rng()"#;
    raw.len() + bytes.len() + (sep as usize) + (escaped as usize)
}
