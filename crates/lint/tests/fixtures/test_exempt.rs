//! Fixture: code inside `#[cfg(test)]` / `#[test]` items is exempt from all
//! rules — the invariants protect simulation state, not test harnesses
//! (which may legitimately time themselves or use a throwaway HashMap).

pub fn simulation_code() -> u64 {
    42
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_fine_in_tests() {
        let start = std::time::Instant::now();
        assert_eq!(simulation_code(), 42);
        let _elapsed = start.elapsed();
        let _lucky: u64 = rand::random();
    }

    #[test]
    fn hashed_containers_are_fine_in_tests() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
