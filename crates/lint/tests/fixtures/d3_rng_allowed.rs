//! Fixture: rule `ambient-rng` suppressed by a well-formed annotation.

pub fn session_token() -> u64 {
    // comfase-lint: allow(ambient-rng, reason = "token is for log labelling, not sim state")
    rand::random()
}
