//! Fixture: rule `global-state` suppressed by a well-formed annotation.

pub fn cli_args() -> Vec<String> {
    // comfase-lint: allow(global-state, reason = "binary entry point parses its own argv")
    std::env::args().collect()
}
