//! Fixture: rule `wall-clock` must fire on wall-clock reads in non-test code.

use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

pub fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs()
}
