//! Fixture: rule `hash-collections` suppressed by a well-formed annotation.

// comfase-lint: allow(hash-collections, reason = "interned keys never iterated")
use std::collections::HashMap;

pub struct Cache {
    // comfase-lint: allow(hash-collections, reason = "lookup only, order never observed")
    entries: HashMap<u64, f64>,
}
