//! Fixture: rule `hash-collections` must fire on every hashed container.

use std::collections::{HashMap, HashSet};

pub struct Index {
    by_id: HashMap<u64, String>,
    seen: HashSet<u64>,
}

pub fn build() -> std::collections::HashMap<String, u32> {
    std::collections::HashMap::new()
}
