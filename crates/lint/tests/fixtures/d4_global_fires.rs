//! Fixture: rule `global-state` must fire on mutable globals and env reads.

static mut COUNTER: u64 = 0;

pub static REGISTRY: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();

pub fn config_dir() -> Option<String> {
    std::env::var("COMFASE_CONFIG").ok()
}

pub fn first_arg() -> Option<String> {
    std::env::args().nth(1)
}
