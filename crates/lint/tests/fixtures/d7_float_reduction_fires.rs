//! D7 fixture: float reductions over unordered iterators.
//!
//! `BTreeMap::values()` yields in key order, but the *accumulation* order
//! of a float sum is what matters: refactoring the map to a different key
//! type (or the iterator to a parallel one) silently reorders the adds and
//! shifts the low bits of the result.

use std::collections::BTreeMap;

pub fn total_delay(delays: &BTreeMap<u32, f64>) -> f64 {
    delays.values().sum()
}

pub fn doubled_f32(delays: &BTreeMap<u32, f32>) -> f32 {
    delays.values().map(|d| d * 2.0).sum::<f32>()
}

pub fn folded(delays: &BTreeMap<u32, f64>) -> f64 {
    delays.values().fold(0.0, |acc, d| acc + d)
}

pub fn reduced(delays: &BTreeMap<u32, f64>) -> f64 {
    delays.values().copied().reduce(|a, b| a + b).unwrap_or(0.0)
}
