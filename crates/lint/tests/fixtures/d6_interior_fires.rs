//! D6 fixture: interior mutability smuggled into simulation state.
//!
//! Every field here bypasses `Clone`-based world forking: a forked `World`
//! would share (or silently duplicate) mutation channels whose effect order
//! depends on host thread scheduling.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct SimState {
    cached_positions: RefCell<Vec<f64>>,
    hits: Cell<u64>,
    shared_log: Mutex<Vec<u64>>,
    rx_count: AtomicU64,
}

pub fn bump(state: &SimState) {
    state.rx_count.fetch_add(1, Ordering::Relaxed);
    state.hits.set(state.hits.get() + 1);
}
