//! Reception decision: is a frame decodable given noise and interference?
//!
//! Models Veins' SNIR-threshold decider: a frame is received correctly when
//! its power is above the sensitivity and the worst-case signal-to-noise-
//! and-interference ratio over the whole reception stays above the MCS
//! threshold.

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

use crate::phy::PhyConfig;
use crate::units::{ratio_db, Milliwatts};

/// An interfering transmission overlapping a reception.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interferer {
    /// Interference power at the receiver.
    pub power: Milliwatts,
    /// First instant the interferer is on air.
    pub start: SimTime,
    /// Last instant the interferer is on air.
    pub end: SimTime,
}

/// Why a frame was lost, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossReason {
    /// Below receiver sensitivity — not detectable at all.
    BelowSensitivity,
    /// Detected but SNIR below the decoding threshold.
    Snir,
    /// The SNIR computation produced NaN (numeric divergence in the power
    /// model). The frame is treated as lost and the run should be failed
    /// with `FailureKind::NumericDiverged` rather than trusted.
    NumericFault,
}

/// Outcome of a reception attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeciderResult {
    /// Frame decoded; worst-case SNIR in dB attached.
    Received {
        /// Worst-case SNIR over the reception, dB.
        snir_db: f64,
    },
    /// Frame lost.
    Lost(LossReason),
}

impl DeciderResult {
    /// `true` if the frame was decoded.
    pub fn is_received(&self) -> bool {
        matches!(self, DeciderResult::Received { .. })
    }
}

/// Decides whether a frame spanning `[start, end]` with `signal` power is
/// decodable under `config`, given the overlapping `interferers`.
pub fn decide(
    config: &PhyConfig,
    signal: Milliwatts,
    start: SimTime,
    end: SimTime,
    interferers: &[Interferer],
) -> DeciderResult {
    if signal.to_dbm().0 < config.sensitivity.0 {
        return DeciderResult::Lost(LossReason::BelowSensitivity);
    }
    let noise = config.noise_floor.to_milliwatts();
    // Worst-case interference: the maximum simultaneous interferer power sum
    // at any instant of the reception. Power sums change only at interferer
    // boundaries, so evaluating at each boundary inside [start, end] (plus
    // `start` itself) is exact.
    let mut worst = Milliwatts::ZERO;
    let mut check_instant = |t: SimTime| {
        let mut sum = Milliwatts::ZERO;
        for i in interferers {
            if i.start <= t && t < i.end {
                sum += i.power;
            }
        }
        if sum.0 > worst.0 {
            worst = sum;
        }
    };
    check_instant(start);
    for i in interferers {
        if i.start > start && i.start < end {
            check_instant(i.start);
        }
    }
    let snir_db = ratio_db(signal, noise + worst);
    // Sim sanitizer (release builds too): a NaN SNIR would fail the
    // threshold comparison silently and lose the frame without a
    // `LossReason` the stats can explain. Surface it as a structured
    // numeric fault instead.
    if snir_db.is_nan() {
        return DeciderResult::Lost(LossReason::NumericFault);
    }
    if snir_db >= config.mcs.snir_threshold_db() {
        DeciderResult::Received { snir_db }
    } else {
        DeciderResult::Lost(LossReason::Snir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Dbm;

    fn cfg() -> PhyConfig {
        PhyConfig::default()
    }

    fn t(ms: i64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn clean_strong_frame_received() {
        let r = decide(&cfg(), Dbm(-70.0).to_milliwatts(), t(0), t(1), &[]);
        match r {
            DeciderResult::Received { snir_db } => {
                assert!((snir_db - 40.0).abs() < 1e-9, "snir {snir_db}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn below_sensitivity_lost() {
        let r = decide(&cfg(), Dbm(-95.0).to_milliwatts(), t(0), t(1), &[]);
        assert_eq!(r, DeciderResult::Lost(LossReason::BelowSensitivity));
    }

    #[test]
    fn strong_interferer_kills_frame() {
        let interferer = Interferer {
            power: Dbm(-68.0).to_milliwatts(),
            start: t(0),
            end: t(1),
        };
        let r = decide(
            &cfg(),
            Dbm(-70.0).to_milliwatts(),
            t(0),
            t(1),
            &[interferer],
        );
        assert_eq!(r, DeciderResult::Lost(LossReason::Snir));
    }

    #[test]
    fn non_overlapping_interferer_ignored() {
        let interferer = Interferer {
            power: Dbm(-40.0).to_milliwatts(),
            start: t(2),
            end: t(3),
        };
        let r = decide(
            &cfg(),
            Dbm(-70.0).to_milliwatts(),
            t(0),
            t(1),
            &[interferer],
        );
        assert!(r.is_received());
    }

    #[test]
    fn partial_overlap_counts() {
        let interferer = Interferer {
            power: Dbm(-50.0).to_milliwatts(),
            start: t(0),
            end: t(1),
        };
        // Reception [0.5ms, 1.5ms] overlaps the interferer's second half.
        let r = decide(
            &cfg(),
            Dbm(-70.0).to_milliwatts(),
            SimTime::from_micros(500),
            SimTime::from_micros(1500),
            &[interferer],
        );
        assert_eq!(r, DeciderResult::Lost(LossReason::Snir));
    }

    #[test]
    fn weak_interference_tolerated() {
        let interferer = Interferer {
            power: Dbm(-100.0).to_milliwatts(),
            start: t(0),
            end: t(1),
        };
        let r = decide(
            &cfg(),
            Dbm(-70.0).to_milliwatts(),
            t(0),
            t(1),
            &[interferer],
        );
        assert!(r.is_received());
    }

    #[test]
    fn interferers_accumulate() {
        // Two interferers, each alone tolerable, together exceed budget.
        // Signal -80 dBm; threshold for QPSK12 is 6 dB -> interference+noise
        // budget is -86 dBm. Each interferer at -88 dBm: alone SNIR ~7.9 dB
        // (ok), both sum to -84.9 dBm -> SNIR ~4.9 dB (lost).
        let mk = |s, e| Interferer {
            power: Dbm(-88.0).to_milliwatts(),
            start: s,
            end: e,
        };
        let one = decide(
            &cfg(),
            Dbm(-80.0).to_milliwatts(),
            t(0),
            t(1),
            &[mk(t(0), t(1))],
        );
        assert!(one.is_received());
        let both = decide(
            &cfg(),
            Dbm(-80.0).to_milliwatts(),
            t(0),
            t(1),
            &[mk(t(0), t(1)), mk(t(0), t(1))],
        );
        assert_eq!(both, DeciderResult::Lost(LossReason::Snir));
    }

    #[test]
    fn nan_snir_is_a_numeric_fault() {
        // Infinite signal power over infinite interference: inf/inf → NaN.
        let inf = Milliwatts(f64::INFINITY);
        let interferer = Interferer {
            power: inf,
            start: t(0),
            end: t(1),
        };
        let r = decide(&cfg(), inf, t(0), t(1), &[interferer]);
        assert_eq!(r, DeciderResult::Lost(LossReason::NumericFault));
    }

    #[test]
    fn worst_window_is_found_mid_frame() {
        // Interferer arrives mid-reception and is decisive.
        let interferer = Interferer {
            power: Dbm(-60.0).to_milliwatts(),
            start: SimTime::from_micros(400),
            end: SimTime::from_micros(600),
        };
        let r = decide(
            &cfg(),
            Dbm(-70.0).to_milliwatts(),
            t(0),
            SimTime::from_micros(1000),
            &[interferer],
        );
        assert_eq!(r, DeciderResult::Lost(LossReason::Snir));
    }
}
