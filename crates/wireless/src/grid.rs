//! Deterministic uniform-grid neighbor index over node positions.
//!
//! [`NeighborGrid`] buckets nodes into square cells of a fixed size (the
//! medium derives it by inverting the path-loss model at the fan-out
//! pruning threshold, so one cell ring always covers the maximum reach of a
//! transmission). Candidate queries return the 3×3 cell neighborhood around
//! a position, **sorted by [`NodeId`]** — the same relative order as the
//! brute-force `BTreeMap` scan it replaces, which keeps interceptor call
//! sequences and therefore whole runs bit-identical.
//!
//! Only ordered structures are used (`BTreeMap` + sorted `Vec`s), so
//! iteration order is a pure function of the stored keys — never of hash
//! state — per the determinism rules enforced by `comfase-lint`.

use std::collections::BTreeMap;

use crate::frame::NodeId;
use crate::geom::Position;

/// Cell coordinate: `floor(x / cell)`, `floor(y / cell)` as `i64`.
type Cell = (i64, i64);

/// A uniform grid over the ground plane mapping cells to the nodes inside
/// them. Cloneable so it survives `World` snapshots (PrefixFork).
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborGrid {
    cell_m: f64,
    /// Nodes per occupied cell, each `Vec` kept sorted by `NodeId`.
    cells: BTreeMap<Cell, Vec<NodeId>>,
    /// Reverse index: which cell each node currently occupies.
    node_cells: BTreeMap<NodeId, Cell>,
}

impl NeighborGrid {
    /// Creates an empty grid with the given cell edge length in metres.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_m` is positive and finite.
    pub fn new(cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be positive and finite, got {cell_m}"
        );
        NeighborGrid {
            cell_m,
            cells: BTreeMap::new(),
            node_cells: BTreeMap::new(),
        }
    }

    /// The cell edge length, metres.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.node_cells.len()
    }

    /// `true` if no node is indexed.
    pub fn is_empty(&self) -> bool {
        self.node_cells.is_empty()
    }

    fn cell_of(&self, pos: &Position) -> Cell {
        // `as i64` saturates (and maps NaN to 0) deterministically, so even
        // pathological coordinates land in a well-defined cell.
        (
            (pos.x / self.cell_m).floor() as i64,
            (pos.y / self.cell_m).floor() as i64,
        )
    }

    /// Inserts a node or moves it to the cell containing `pos`.
    pub fn update_position(&mut self, node: NodeId, pos: &Position) {
        let new_cell = self.cell_of(pos);
        if let Some(&old_cell) = self.node_cells.get(&node) {
            if old_cell == new_cell {
                return;
            }
            self.remove_from_cell(node, old_cell);
        }
        self.node_cells.insert(node, new_cell);
        let bucket = self.cells.entry(new_cell).or_default();
        let at = bucket.partition_point(|&n| n < node);
        bucket.insert(at, node);
    }

    /// Removes a node from the index (no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        if let Some(cell) = self.node_cells.remove(&node) {
            self.remove_from_cell(node, cell);
        }
    }

    fn remove_from_cell(&mut self, node: NodeId, cell: Cell) {
        if let Some(bucket) = self.cells.get_mut(&cell) {
            if let Ok(at) = bucket.binary_search(&node) {
                bucket.remove(at);
            }
            if bucket.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }

    /// All nodes in the 3×3 cell neighborhood around `pos`, sorted by
    /// `NodeId`. With the cell size at least the maximum transmission
    /// range, this is a superset of every node within range of `pos`.
    pub fn candidates(&self, pos: &Position) -> Vec<NodeId> {
        let (cx, cy) = self.cell_of(pos);
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let cell = (cx.saturating_add(dx), cy.saturating_add(dy));
                if let Some(bucket) = self.cells.get(&cell) {
                    out.extend_from_slice(bucket);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Position {
        Position::on_road(x, y)
    }

    #[test]
    fn candidates_cover_everything_within_cell_size() {
        let mut g = NeighborGrid::new(100.0);
        for i in 0..50u32 {
            g.update_position(NodeId(i), &p(i as f64 * 13.0, (i % 7) as f64));
        }
        assert_eq!(g.len(), 50);
        for i in 0..50u32 {
            let me = p(i as f64 * 13.0, (i % 7) as f64);
            let cands = g.candidates(&me);
            for j in 0..50u32 {
                let other = p(j as f64 * 13.0, (j % 7) as f64);
                if me.ground_distance_to(&other) <= 100.0 {
                    assert!(cands.contains(&NodeId(j)), "{i} must see {j}");
                }
            }
        }
    }

    #[test]
    fn candidates_are_sorted_and_deduplicated() {
        let mut g = NeighborGrid::new(50.0);
        for i in [9u32, 3, 7, 1, 5] {
            g.update_position(NodeId(i), &p(i as f64, 0.0));
        }
        let cands = g.candidates(&p(5.0, 0.0));
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cands, sorted);
        assert_eq!(cands.len(), 5);
    }

    #[test]
    fn update_moves_between_cells() {
        let mut g = NeighborGrid::new(10.0);
        g.update_position(NodeId(1), &p(5.0, 0.0));
        assert!(g.candidates(&p(5.0, 0.0)).contains(&NodeId(1)));
        g.update_position(NodeId(1), &p(500.0, 0.0));
        assert!(!g.candidates(&p(5.0, 0.0)).contains(&NodeId(1)));
        assert!(g.candidates(&p(500.0, 0.0)).contains(&NodeId(1)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_drops_node_and_empty_cells() {
        let mut g = NeighborGrid::new(10.0);
        g.update_position(NodeId(1), &p(5.0, 0.0));
        g.update_position(NodeId(2), &p(6.0, 0.0));
        g.remove(NodeId(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g.candidates(&p(5.0, 0.0)), vec![NodeId(2)]);
        g.remove(NodeId(2));
        assert!(g.is_empty());
        assert!(g.cells.is_empty(), "empty cells are garbage-collected");
        // Removing an absent node is a no-op.
        g.remove(NodeId(7));
    }

    #[test]
    fn survives_clone() {
        let mut g = NeighborGrid::new(25.0);
        for i in 0..10u32 {
            g.update_position(NodeId(i), &p(i as f64 * 20.0, 0.0));
        }
        let fork = g.clone();
        assert_eq!(g, fork);
        assert_eq!(
            g.candidates(&p(100.0, 0.0)),
            fork.candidates(&p(100.0, 0.0))
        );
    }

    #[test]
    fn pathological_coordinates_stay_deterministic() {
        let mut g = NeighborGrid::new(10.0);
        g.update_position(NodeId(1), &p(f64::NAN, 0.0));
        g.update_position(NodeId(2), &p(1e300, 0.0));
        let a = g.candidates(&p(f64::NAN, 0.0));
        let b = g.candidates(&p(f64::NAN, 0.0));
        assert_eq!(a, b);
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_cell_size_rejected() {
        NeighborGrid::new(0.0);
    }
}
