//! The analogue wireless medium — and ComFASE's injection point.
//!
//! [`Medium`] knows every node's antenna position and radio configuration.
//! A transmission fans out to every other node: per link the medium computes
//! the received power (path loss model) and the **propagation delay**
//! (`distance / c`, exactly Veins' `propagationDelay`), then consults the
//! installed [`ChannelInterceptor`] — the hook ComFASE uses to inject
//! faults and attacks into the wireless channel between the sender and
//! receiver modules (paper §III-B): delay attacks override the propagation
//! delay, DoS attacks push it past the end of the simulation, jamming drops
//! the frame, falsification rewrites the payload in flight.
//!
//! The medium also tracks ongoing receptions per node so the SNIR decider
//! can account for interference, and answers carrier-sense queries for the
//! MAC.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comfase_des::time::{SimDuration, SimTime};

use crate::decider::{decide, DeciderResult, Interferer, LossReason};
use crate::frame::{NodeId, Wsm};
use crate::geom::Position;
use crate::grid::NeighborGrid;
use crate::pathloss::{FreeSpace, PathLossModel};
use crate::phy::{frame_duration, PhyConfig};
use crate::units::{Dbm, Milliwatts, CCH_FREQ_HZ, SPEED_OF_LIGHT_MPS};

/// How [`Medium::transmit`] enumerates potential receivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FanoutStrategy {
    /// Uniform-grid neighbor index: visit only nodes within one cell ring
    /// of the sender, with the cell size derived by inverting the path-loss
    /// model at the fan-out pruning threshold (`noise_floor − 10 dB`).
    /// Falls back to [`FanoutStrategy::BruteForce`] behaviour when the
    /// installed model reports no finite range bound.
    #[default]
    Grid,
    /// Reference implementation: visit every registered node.
    BruteForce,
}

/// What the interceptor decides for one (tx, rx) link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkFate {
    /// Deliver after the given propagation delay (the default is
    /// `distance / c`; attacks may override it).
    Deliver {
        /// Propagation delay to apply.
        delay: SimDuration,
    },
    /// Deliver a modified message (falsification attacks).
    DeliverModified {
        /// Propagation delay to apply.
        delay: SimDuration,
        /// The rewritten message.
        wsm: Wsm,
    },
    /// Silently drop the frame on this link (jamming).
    Drop,
}

/// Per-link hook consulted for every transmission — ComFASE's
/// `CommModelEditor` attaches attack models here.
pub trait ChannelInterceptor: std::fmt::Debug + Send + Sync {
    /// Decides the fate of the frame on the `tx -> rx` link.
    fn intercept(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        now: SimTime,
        default_delay: SimDuration,
        wsm: &Wsm,
    ) -> LinkFate;
}

/// A reception the world must schedule: the frame from `transmit` arriving
/// at one receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedReception {
    /// Identifies the transmission this reception belongs to.
    pub frame_id: u64,
    /// Receiving node.
    pub rx: NodeId,
    /// The (possibly attack-modified) message.
    pub wsm: Wsm,
    /// First bit arrives.
    pub start: SimTime,
    /// Last bit arrives.
    pub end: SimTime,
    /// Received signal power.
    pub power: Milliwatts,
    /// `true` if the power exceeds the receiver's carrier-sense threshold
    /// (the MAC must treat the medium as busy during the reception).
    pub above_cs: bool,
}

/// Result of one transmission: how long the sender is busy and the fan-out.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmitOutcome {
    /// Identifies this transmission.
    pub frame_id: u64,
    /// On-air duration at the sender.
    pub duration: SimDuration,
    /// One planned reception per reachable receiver.
    pub receptions: Vec<PlannedReception>,
}

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Transmissions started.
    pub transmissions: u64,
    /// Link deliveries planned (after interception).
    pub links_planned: u64,
    /// Links dropped by the interceptor.
    pub links_dropped_by_interceptor: u64,
    /// Links skipped in the fan-out because the received power would be
    /// far below the noise floor (neither decodable nor interfering).
    #[serde(default)]
    pub links_below_noise: u64,
    /// Links with modified propagation delay.
    pub links_delay_modified: u64,
    /// Links with payload modified.
    pub links_payload_modified: u64,
    /// Receptions decoded successfully.
    pub received: u64,
    /// Receptions lost below sensitivity.
    pub lost_sensitivity: u64,
    /// Receptions lost to SNIR.
    pub lost_snir: u64,
    /// Transmissions attempted by a node with no registered position (e.g.
    /// a collision-removed vehicle whose MAC still had a frame queued);
    /// dropped without fan-out instead of panicking.
    #[serde(default)]
    pub tx_unregistered: u64,
    /// Links skipped by the grid index without a per-link power evaluation.
    /// Always a subset of `links_below_noise` (the grid radius is a
    /// conservative bound on the pruning threshold), so the breakdown
    /// counters stay strategy-independent.
    #[serde(default)]
    pub links_pruned_by_grid: u64,
}

#[derive(Debug, Clone)]
struct Ongoing {
    frame_id: u64,
    start: SimTime,
    end: SimTime,
    power: Milliwatts,
    /// Set once the reception decision was made; the entry then only
    /// serves as interference history for same-instant receptions.
    finished: bool,
}

/// The shared analogue medium.
///
/// Node positions and ongoing receptions are kept in `BTreeMap`s so the
/// transmission fan-out order depends only on node ids — never on hash
/// state — which keeps runs bit-reproducible across instances (a forked
/// snapshot and a from-scratch run fan out identically).
#[derive(Debug)]
pub struct Medium {
    /// Immutable after construction, so forks share it by reference
    /// instead of deep-copying (`PathLossModel` only exposes `&self`
    /// methods).
    pathloss: std::sync::Arc<dyn PathLossModel>,
    freq_hz: f64,
    phy: PhyConfig,
    positions: BTreeMap<NodeId, Position>,
    ongoing: BTreeMap<NodeId, Vec<Ongoing>>,
    interceptor: Option<Box<dyn ChannelInterceptor>>,
    next_frame_id: u64,
    stats: ChannelStats,
    numeric_fault: Option<String>,
    strategy: FanoutStrategy,
    /// Present iff `strategy == Grid` and the path-loss model admits a
    /// finite range bound at the pruning threshold.
    grid: Option<NeighborGrid>,
}

impl Clone for Medium {
    /// Snapshots the medium state for forked execution.
    ///
    /// # Panics
    ///
    /// Panics if an interceptor is installed: interceptors are stateful
    /// trait objects installed only for the attack window, and snapshots are
    /// taken at attack-free points (before `attackStartTime`).
    fn clone(&self) -> Self {
        assert!(
            self.interceptor.is_none(),
            "cannot snapshot a Medium with an installed interceptor; \
             fork before installing the attack"
        );
        Medium {
            pathloss: std::sync::Arc::clone(&self.pathloss),
            freq_hz: self.freq_hz,
            phy: self.phy,
            positions: self.positions.clone(),
            ongoing: self.ongoing.clone(),
            interceptor: None,
            next_frame_id: self.next_frame_id,
            stats: self.stats,
            numeric_fault: self.numeric_fault.clone(),
            strategy: self.strategy,
            grid: self.grid.clone(),
        }
    }
}

impl Medium {
    /// Creates a medium on the WAVE control channel with free-space path
    /// loss and Veins-default PHY parameters.
    pub fn new() -> Self {
        Medium::with_models(
            Box::new(FreeSpace::default()),
            CCH_FREQ_HZ,
            PhyConfig::default(),
        )
    }

    /// Creates a medium with explicit models — the paper's `wirelessModel`
    /// configuration.
    pub fn with_models(pathloss: Box<dyn PathLossModel>, freq_hz: f64, phy: PhyConfig) -> Self {
        let mut m = Medium {
            pathloss: pathloss.into(),
            freq_hz,
            phy,
            positions: BTreeMap::new(),
            ongoing: BTreeMap::new(),
            interceptor: None,
            next_frame_id: 0,
            stats: ChannelStats::default(),
            numeric_fault: None,
            strategy: FanoutStrategy::default(),
            grid: None,
        };
        m.rebuild_grid();
        m
    }

    /// Selects how `transmit` enumerates receivers and rebuilds the grid
    /// index accordingly.
    pub fn set_fanout_strategy(&mut self, strategy: FanoutStrategy) {
        self.strategy = strategy;
        self.rebuild_grid();
    }

    /// The active fan-out strategy.
    pub fn fanout_strategy(&self) -> FanoutStrategy {
        self.strategy
    }

    /// Cell size of the active grid index, metres (`None` when running
    /// brute-force or when the model has no finite range bound).
    pub fn grid_cell_size_m(&self) -> Option<f64> {
        self.grid.as_ref().map(NeighborGrid::cell_size_m)
    }

    /// The fan-out pruning threshold: frames an order of magnitude below
    /// the noise floor can neither be decoded nor meaningfully interfere.
    fn prune_threshold(&self) -> Dbm {
        Dbm(self.phy.noise_floor.0 - 10.0)
    }

    fn rebuild_grid(&mut self) {
        let cell = match self.strategy {
            FanoutStrategy::Grid => {
                self.pathloss
                    .max_range_m(self.phy.tx_power, self.freq_hz, self.prune_threshold())
            }
            FanoutStrategy::BruteForce => None,
        };
        self.grid = cell.map(|cell_m| {
            let mut g = NeighborGrid::new(cell_m);
            for (node, pos) in &self.positions {
                g.update_position(*node, pos);
            }
            g
        });
    }

    /// The PHY configuration shared by all nodes.
    pub fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    /// Name of the installed path loss model.
    pub fn pathloss_name(&self) -> &'static str {
        self.pathloss.name()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Installs (or replaces) the channel interceptor. This is ComFASE's
    /// `CommModelEditor` step: the updated communication model takes effect
    /// for every subsequent transmission.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn ChannelInterceptor>) {
        self.interceptor = Some(interceptor);
    }

    /// Removes the interceptor, restoring the unmodified communication
    /// model.
    pub fn clear_interceptor(&mut self) -> Option<Box<dyn ChannelInterceptor>> {
        self.interceptor.take()
    }

    /// `true` if an interceptor is installed.
    pub fn has_interceptor(&self) -> bool {
        self.interceptor.is_some()
    }

    /// Registers a node or moves it to a new position.
    pub fn update_position(&mut self, node: NodeId, pos: Position) {
        self.positions.insert(node, pos);
        if let Some(grid) = &mut self.grid {
            grid.update_position(node, &pos);
        }
    }

    /// Removes a node from the medium (e.g. after a collision removal).
    pub fn remove_node(&mut self, node: NodeId) {
        self.positions.remove(&node);
        self.ongoing.remove(&node);
        if let Some(grid) = &mut self.grid {
            grid.remove(node);
        }
    }

    /// Registered nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Default propagation delay on a link: `distance / c` (Veins'
    /// `propagationDelay` parameter, the target of Table I's attacks).
    pub fn default_propagation_delay(&self, tx: NodeId, rx: NodeId) -> Option<SimDuration> {
        let a = self.positions.get(&tx)?;
        let b = self.positions.get(&rx)?;
        Some(SimDuration::from_secs_f64(
            a.distance_to(b) / SPEED_OF_LIGHT_MPS,
        ))
    }

    /// Starts a transmission at `now`. Returns the planned fan-out; the
    /// caller schedules reception start/end events and reports them back
    /// via [`Medium::reception_started`] / [`Medium::reception_finished`].
    ///
    /// A sender with no registered position (a collision-removed vehicle
    /// whose MAC still had a frame queued) produces an empty fan-out and
    /// bumps `stats.tx_unregistered` instead of panicking.
    pub fn transmit(&mut self, tx: NodeId, wsm: Wsm, now: SimTime) -> TransmitOutcome {
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        let duration = frame_duration(wsm.size_bits(), self.phy.mcs);
        let Some(&tx_pos) = self.positions.get(&tx) else {
            self.stats.tx_unregistered += 1;
            return TransmitOutcome {
                frame_id,
                duration,
                receptions: Vec::new(),
            };
        };
        self.stats.transmissions += 1;
        let mut receptions = Vec::new();
        let rx_nodes: Vec<(NodeId, Position)> = match &self.grid {
            Some(grid) => {
                // Candidates come back sorted by NodeId — a subset of the
                // brute-force BTreeMap scan in the same relative order, so
                // interceptor call sequences are bit-identical.
                let cands: Vec<(NodeId, Position)> = grid
                    .candidates(&tx_pos)
                    .into_iter()
                    .filter(|&id| id != tx)
                    .map(|id| {
                        let pos = self
                            .positions
                            .get(&id)
                            .expect("grid tracks registered nodes");
                        (id, *pos)
                    })
                    .collect();
                // Everything outside the 3×3 neighborhood is guaranteed
                // below the pruning threshold; account for those links
                // exactly as the brute-force scan would have.
                let pruned = (self.positions.len() - 1 - cands.len()) as u64;
                self.stats.links_below_noise += pruned;
                self.stats.links_pruned_by_grid += pruned;
                cands
            }
            None => self
                .positions
                .iter()
                .filter(|(id, _)| **id != tx)
                .map(|(id, p)| (*id, *p))
                .collect(),
        };
        for (rx, rx_pos) in rx_nodes {
            let power =
                self.pathloss
                    .received_power(self.phy.tx_power, self.freq_hz, &tx_pos, &rx_pos);
            // Frames an order of magnitude below the noise floor can neither
            // be decoded nor meaningfully interfere; skip them.
            if power.to_dbm().0 < self.prune_threshold().0 {
                self.stats.links_below_noise += 1;
                continue;
            }
            let default_delay =
                SimDuration::from_secs_f64(tx_pos.distance_to(&rx_pos) / SPEED_OF_LIGHT_MPS);
            let fate = match self.interceptor.as_mut() {
                Some(i) => i.intercept(tx, rx, now, default_delay, &wsm),
                None => LinkFate::Deliver {
                    delay: default_delay,
                },
            };
            let (delay, wsm_out) = match fate {
                LinkFate::Deliver { delay } => {
                    if delay != default_delay {
                        self.stats.links_delay_modified += 1;
                    }
                    (delay, wsm.clone())
                }
                LinkFate::DeliverModified {
                    delay,
                    wsm: modified,
                } => {
                    if delay != default_delay {
                        self.stats.links_delay_modified += 1;
                    }
                    self.stats.links_payload_modified += 1;
                    (delay, modified)
                }
                LinkFate::Drop => {
                    self.stats.links_dropped_by_interceptor += 1;
                    continue;
                }
            };
            let start = now + delay;
            self.stats.links_planned += 1;
            receptions.push(PlannedReception {
                frame_id,
                rx,
                wsm: wsm_out,
                start,
                end: start + duration,
                power,
                above_cs: power.to_dbm().0 >= self.phy.cs_threshold.0,
            });
        }
        TransmitOutcome {
            frame_id,
            duration,
            receptions,
        }
    }

    /// Registers a reception as ongoing (call at its start time) so it is
    /// visible as interference to overlapping frames.
    pub fn reception_started(&mut self, planned: &PlannedReception) {
        self.ongoing.entry(planned.rx).or_default().push(Ongoing {
            frame_id: planned.frame_id,
            start: planned.start,
            end: planned.end,
            power: planned.power,
            finished: false,
        });
    }

    /// Finishes a reception (call at its end time) and decides whether the
    /// frame was decodable given everything that overlapped it.
    pub fn reception_finished(&mut self, planned: &PlannedReception) -> DeciderResult {
        let list = self.ongoing.entry(planned.rx).or_default();
        let interferers: Vec<Interferer> = list
            .iter()
            .filter(|o| o.frame_id != planned.frame_id)
            .filter(|o| o.start < planned.end && o.end > planned.start)
            .map(|o| Interferer {
                power: o.power,
                start: o.start,
                end: o.end,
            })
            .collect();
        // Mark this reception decided, then prune: an entry may be dropped
        // once it is decided AND no still-undecided overlapping reception
        // needs it as interference history. (The old `retain(o.end >= now)`
        // both leaked equal-end frames into every later decision and
        // prematurely dropped history that a pending overlapping reception
        // still needed, under-counting interference for staggered frames.)
        if let Some(own) = list.iter_mut().find(|o| o.frame_id == planned.frame_id) {
            own.finished = true;
        }
        let keep: Vec<bool> = list
            .iter()
            .map(|o| {
                !o.finished
                    || list
                        .iter()
                        .any(|u| !u.finished && o.start < u.end && o.end > u.start)
            })
            .collect();
        let mut idx = 0;
        list.retain(|_| {
            idx += 1;
            keep[idx - 1]
        });
        let result = decide(
            &self.phy,
            planned.power,
            planned.start,
            planned.end,
            &interferers,
        );
        match result {
            DeciderResult::Received { .. } => self.stats.received += 1,
            DeciderResult::Lost(LossReason::BelowSensitivity) => self.stats.lost_sensitivity += 1,
            DeciderResult::Lost(LossReason::Snir) => self.stats.lost_snir += 1,
            DeciderResult::Lost(LossReason::NumericFault) => {
                // Counted under `lost_snir` so the frame-fate accounting
                // identity (`links_planned == received + lost_snir + ...`)
                // keeps holding; the run is failed via `numeric_fault()`
                // anyway, so the statistics are never reported as trusted.
                self.stats.lost_snir += 1;
                if self.numeric_fault.is_none() {
                    self.numeric_fault = Some(format!(
                        "SNIR of frame {} at node {} evaluated to NaN \
                         (reception [{}, {}], power {:?})",
                        planned.frame_id, planned.rx, planned.start, planned.end, planned.power
                    ));
                }
            }
        }
        result
    }

    /// The first numeric divergence detected by the SNIR guard, if any (a
    /// human-readable diagnosis; the run should be treated as failed with
    /// `FailureKind::NumericDiverged`).
    pub fn numeric_fault(&self) -> Option<&str> {
        self.numeric_fault.as_deref()
    }

    /// Number of interference-history entries currently retained for
    /// `node`. Diagnostic hook: once every reception at a node has been
    /// decided, the backlog must drain back to zero.
    pub fn interference_backlog(&self, node: NodeId) -> usize {
        self.ongoing.get(&node).map_or(0, Vec::len)
    }

    /// `true` if the medium is busy at `node` (some ongoing reception above
    /// the carrier-sense threshold).
    pub fn is_busy(&self, node: NodeId, now: SimTime) -> bool {
        self.ongoing.get(&node).is_some_and(|list| {
            list.iter().any(|o| {
                !o.finished
                    && o.start <= now
                    && now < o.end
                    && o.power.to_dbm().0 >= self.phy.cs_threshold.0
            })
        })
    }
}

impl Default for Medium {
    fn default() -> Self {
        Medium::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::WaveChannel;
    use bytes::Bytes;

    fn wsm(src: u32) -> Wsm {
        Wsm {
            source: NodeId(src),
            sequence: 0,
            created: SimTime::ZERO,
            channel: WaveChannel::Cch,
            payload: Bytes::from_static(b"x"),
        }
    }

    fn medium_with_two_nodes(gap_m: f64) -> Medium {
        let mut m = Medium::new();
        m.update_position(NodeId(1), Position::on_road(0.0, 0.0));
        m.update_position(NodeId(2), Position::on_road(gap_m, 0.0));
        m
    }

    #[test]
    fn close_transmission_reaches_peer() {
        let mut m = medium_with_two_nodes(10.0);
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert_eq!(out.receptions.len(), 1);
        let r = &out.receptions[0];
        assert_eq!(r.rx, NodeId(2));
        // 10 m at 20 mW -> about -55 dBm, above the -65 dBm CCA threshold.
        assert!(r.above_cs, "10 m is well above carrier sense");
        // Propagation delay ~ 10 m / c ~ 33.4 ns.
        assert_eq!(r.start.as_nanos(), 33);
        assert_eq!(r.end - r.start, out.duration);
        m.reception_started(r);
        assert!(m.reception_finished(r).is_received());
        assert_eq!(m.stats().received, 1);
    }

    #[test]
    fn default_propagation_delay_matches_distance() {
        let m = medium_with_two_nodes(299.792458);
        let pd = m.default_propagation_delay(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(pd.as_nanos(), 1000, "299.79 m is one microsecond");
        assert!(m.default_propagation_delay(NodeId(1), NodeId(9)).is_none());
    }

    #[test]
    fn far_node_gets_nothing() {
        let mut m = medium_with_two_nodes(100_000.0);
        assert_eq!(m.fanout_strategy(), FanoutStrategy::Grid);
        assert!(m.grid_cell_size_m().is_some());
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert!(
            out.receptions.is_empty(),
            "100 km is far below the noise floor"
        );
        // The grid pruned the link without evaluating the path loss, but
        // the brute-force-compatible counter still accounts for it.
        assert_eq!(m.stats().links_below_noise, 1);
        assert_eq!(m.stats().links_pruned_by_grid, 1);
    }

    #[test]
    fn transmit_from_unregistered_node_is_a_noop() {
        // Regression: a collision removes a vehicle from the medium while
        // its MAC still has a frame queued; the queued StartTx used to hit
        // `.expect("transmitter must be registered")` and panic.
        let mut m = medium_with_two_nodes(50.0);
        m.remove_node(NodeId(1));
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert!(out.receptions.is_empty());
        assert_eq!(m.stats().tx_unregistered, 1);
        assert_eq!(m.stats().transmissions, 0);
        assert_eq!(m.stats().links_planned, 0);
    }

    #[test]
    fn sender_not_in_fanout() {
        let mut m = medium_with_two_nodes(50.0);
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert!(out.receptions.iter().all(|r| r.rx != NodeId(1)));
    }

    #[test]
    fn overlapping_frames_interfere() {
        let mut m = Medium::new();
        m.update_position(NodeId(1), Position::on_road(0.0, 0.0));
        m.update_position(NodeId(2), Position::on_road(50.0, 0.0));
        m.update_position(NodeId(3), Position::on_road(100.0, 0.0));
        // Node 1 and node 3 transmit simultaneously; node 2 hears both
        // at comparable power -> both frames lost to SNIR.
        let out1 = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        let out3 = m.transmit(NodeId(3), wsm(3), SimTime::ZERO);
        let r1 = out1.receptions.iter().find(|r| r.rx == NodeId(2)).unwrap();
        let r3 = out3.receptions.iter().find(|r| r.rx == NodeId(2)).unwrap();
        m.reception_started(r1);
        m.reception_started(r3);
        assert_eq!(
            m.reception_finished(r1),
            DeciderResult::Lost(LossReason::Snir)
        );
        assert_eq!(
            m.reception_finished(r3),
            DeciderResult::Lost(LossReason::Snir)
        );
        assert_eq!(m.stats().lost_snir, 2);
    }

    #[test]
    fn equal_end_frames_are_pruned_after_decision() {
        // Regression: two simultaneous frames share an end timestamp; the
        // old `retain(|o| o.end >= now)` kept both entries alive forever,
        // double-counting them as interferers for every later frame at the
        // node and leaking memory.
        let mut m = Medium::new();
        m.update_position(NodeId(1), Position::on_road(0.0, 0.0));
        m.update_position(NodeId(2), Position::on_road(50.0, 0.0));
        m.update_position(NodeId(3), Position::on_road(100.0, 0.0));
        let out1 = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        let out3 = m.transmit(NodeId(3), wsm(3), SimTime::ZERO);
        let r1 = out1.receptions.iter().find(|r| r.rx == NodeId(2)).unwrap();
        let r3 = out3.receptions.iter().find(|r| r.rx == NodeId(2)).unwrap();
        assert_eq!(r1.end, r3.end, "equidistant frames end simultaneously");
        m.reception_started(r1);
        m.reception_started(r3);
        m.reception_finished(r1);
        assert_eq!(
            m.interference_backlog(NodeId(2)),
            2,
            "undecided r3 still needs r1 as interference history"
        );
        m.reception_finished(r3);
        assert_eq!(
            m.interference_backlog(NodeId(2)),
            0,
            "all decisions made: the backlog must drain"
        );
    }

    /// Distance at which free-space (α = 2) reception lands at `target`
    /// dBm for this medium's tx power.
    fn dist_for_dbm(m: &Medium, target: f64) -> f64 {
        let lambda = crate::units::wavelength_m(CCH_FREQ_HZ);
        let tx_dbm = m.phy().tx_power.to_dbm().0;
        lambda / (4.0 * std::f64::consts::PI) * 10f64.powf((tx_dbm - target) / 20.0)
    }

    #[test]
    fn staggered_overlap_keeps_interference_history() {
        // Regression: three staggered frames A, C, D at one victim, with A
        // overlapping both. The old prune dropped A when C was decided (A's
        // end was already in the past), so D's decision under-counted
        // interference and wrongly decoded.
        let mut m = Medium::new();
        m.update_position(NodeId(0), Position::on_road(0.0, 0.0));
        m.update_position(NodeId(1), Position::on_road(dist_for_dbm(&m, -78.0), 10.0));
        m.update_position(NodeId(2), Position::on_road(dist_for_dbm(&m, -80.0), -10.0));
        m.update_position(NodeId(3), Position::on_road(-dist_for_dbm(&m, -70.0), 0.0));
        let out_a = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        let dur = out_a.duration;
        let out_c = m.transmit(NodeId(2), wsm(2), SimTime::ZERO + dur / 4);
        let out_d = m.transmit(NodeId(3), wsm(3), SimTime::ZERO + dur / 2);
        let ra = out_a.receptions.iter().find(|r| r.rx == NodeId(0)).unwrap();
        let rc = out_c.receptions.iter().find(|r| r.rx == NodeId(0)).unwrap();
        let rd = out_d.receptions.iter().find(|r| r.rx == NodeId(0)).unwrap();
        m.reception_started(ra);
        m.reception_started(rc);
        m.reception_started(rd);
        // Decisions in end order: A, then C, then D.
        assert_eq!(
            m.reception_finished(ra),
            DeciderResult::Lost(LossReason::Snir)
        );
        assert_eq!(
            m.reception_finished(rc),
            DeciderResult::Lost(LossReason::Snir)
        );
        // D at −70 dBm against A (−78) + C (−80): SNIR ≈ 5.9 dB, below the
        // 6 dB QPSK threshold. With A wrongly pruned it would be ≈ 10 dB
        // and decode.
        assert_eq!(
            m.reception_finished(rd),
            DeciderResult::Lost(LossReason::Snir)
        );
        assert_eq!(m.interference_backlog(NodeId(0)), 0);
    }

    #[test]
    fn grid_and_brute_force_fan_out_identically() {
        let build = |strategy: FanoutStrategy| {
            let mut m = Medium::new();
            m.set_fanout_strategy(strategy);
            for i in 0..8u32 {
                // 10 km spacing: some links in range, some pruned (the
                // default free-space bound is ~18 km at these parameters).
                m.update_position(NodeId(i), Position::on_road(i as f64 * 10_000.0, 0.0));
            }
            m
        };
        let mut grid = build(FanoutStrategy::Grid);
        let mut brute = build(FanoutStrategy::BruteForce);
        for i in 0..8u32 {
            let g = grid.transmit(NodeId(i), wsm(i), SimTime::ZERO);
            let b = brute.transmit(NodeId(i), wsm(i), SimTime::ZERO);
            assert_eq!(g, b, "fan-out diverged for sender {i}");
        }
        assert!(grid.stats().links_pruned_by_grid > 0, "grid must prune");
        let mut gs = grid.stats();
        gs.links_pruned_by_grid = 0;
        assert_eq!(gs, brute.stats());
    }

    #[test]
    fn carrier_sense_during_reception() {
        let mut m = medium_with_two_nodes(10.0);
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        let r = &out.receptions[0];
        m.reception_started(r);
        let mid = r.start + (r.end - r.start) / 2;
        assert!(m.is_busy(NodeId(2), mid));
        assert!(!m.is_busy(NodeId(2), r.end + SimDuration::from_micros(1)));
        assert!(
            !m.is_busy(NodeId(1), mid),
            "sender's own medium state is tracked by its MAC"
        );
        m.reception_finished(r);
        assert!(
            !m.is_busy(NodeId(2), mid),
            "finished receptions don't keep the medium busy"
        );
    }

    #[derive(Debug)]
    struct DelayAll(SimDuration);
    impl ChannelInterceptor for DelayAll {
        fn intercept(
            &mut self,
            _tx: NodeId,
            _rx: NodeId,
            _now: SimTime,
            _default: SimDuration,
            _wsm: &Wsm,
        ) -> LinkFate {
            LinkFate::Deliver { delay: self.0 }
        }
    }

    #[test]
    fn interceptor_overrides_propagation_delay() {
        let mut m = medium_with_two_nodes(50.0);
        m.set_interceptor(Box::new(DelayAll(SimDuration::from_secs(3))));
        let out = m.transmit(NodeId(1), wsm(1), SimTime::from_secs(10));
        let r = &out.receptions[0];
        assert_eq!(r.start, SimTime::from_secs(13));
        assert_eq!(m.stats().links_delay_modified, 1);
        assert!(m.has_interceptor());
        assert!(m.clear_interceptor().is_some());
        assert!(!m.has_interceptor());
        // Back to physics.
        let out = m.transmit(NodeId(1), wsm(1), SimTime::from_secs(20));
        assert!(out.receptions[0].start < SimTime::from_secs(20) + SimDuration::from_micros(1));
    }

    #[derive(Debug)]
    struct DropAll;
    impl ChannelInterceptor for DropAll {
        fn intercept(
            &mut self,
            _tx: NodeId,
            _rx: NodeId,
            _now: SimTime,
            _default: SimDuration,
            _wsm: &Wsm,
        ) -> LinkFate {
            LinkFate::Drop
        }
    }

    #[test]
    fn interceptor_can_drop_links() {
        let mut m = medium_with_two_nodes(50.0);
        m.set_interceptor(Box::new(DropAll));
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert!(out.receptions.is_empty());
        assert_eq!(m.stats().links_dropped_by_interceptor, 1);
    }

    #[derive(Debug)]
    struct Falsify;
    impl ChannelInterceptor for Falsify {
        fn intercept(
            &mut self,
            _tx: NodeId,
            _rx: NodeId,
            _now: SimTime,
            default: SimDuration,
            wsm: &Wsm,
        ) -> LinkFate {
            let mut modified = wsm.clone();
            modified.payload = Bytes::from_static(b"lies");
            LinkFate::DeliverModified {
                delay: default,
                wsm: modified,
            }
        }
    }

    #[test]
    fn interceptor_can_falsify_payload() {
        let mut m = medium_with_two_nodes(50.0);
        m.set_interceptor(Box::new(Falsify));
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert_eq!(&out.receptions[0].wsm.payload[..], b"lies");
        assert_eq!(m.stats().links_payload_modified, 1);
    }

    #[test]
    fn removed_node_gets_nothing() {
        let mut m = medium_with_two_nodes(50.0);
        m.remove_node(NodeId(2));
        let out = m.transmit(NodeId(1), wsm(1), SimTime::ZERO);
        assert!(out.receptions.is_empty());
        assert_eq!(m.node_count(), 1);
    }

    #[test]
    fn fanout_covers_all_receivers() {
        let mut m = Medium::new();
        for i in 0..5 {
            m.update_position(NodeId(i), Position::on_road(i as f64 * 20.0, 0.0));
        }
        let out = m.transmit(NodeId(0), wsm(0), SimTime::ZERO);
        assert_eq!(out.receptions.len(), 4);
    }
}
