//! Radio units and physical constants.
//!
//! Powers are carried as linear milliwatts ([`Milliwatts`]) in computations
//! and as [`Dbm`] at configuration boundaries, with explicit conversions —
//! mixing the two silently is the classic radio-simulation bug.

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, m/s. Veins derives its default propagation
/// delay as `distance / SPEED_OF_LIGHT`; ComFASE's delay and DoS attacks
/// overwrite exactly that value.
pub const SPEED_OF_LIGHT_MPS: f64 = 299_792_458.0;

/// Centre frequency of the WAVE control channel (CCH, channel 178), Hz.
pub const CCH_FREQ_HZ: f64 = 5.890e9;

/// Centre frequency of WAVE service channel 176, Hz.
pub const SCH1_FREQ_HZ: f64 = 5.880e9;

/// Thermal noise floor used by Veins for a 10 MHz 802.11p channel, dBm.
pub const THERMAL_NOISE_DBM: f64 = -110.0;

/// Power in dBm (decibel-milliwatts).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Dbm(pub f64);

/// Power in linear milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Milliwatts(pub f64);

impl Dbm {
    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }
}

impl Milliwatts {
    /// Zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// Converts to dBm. Zero or negative power maps to `-inf` dBm.
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm(f64::NEG_INFINITY)
        } else {
            Dbm(10.0 * self.0.log10())
        }
    }
}

impl From<Dbm> for Milliwatts {
    fn from(d: Dbm) -> Self {
        d.to_milliwatts()
    }
}

impl From<Milliwatts> for Dbm {
    fn from(m: Milliwatts) -> Self {
        m.to_dbm()
    }
}

impl std::ops::Add for Milliwatts {
    type Output = Milliwatts;
    fn add(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Milliwatts {
    fn add_assign(&mut self, rhs: Milliwatts) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<f64> for Milliwatts {
    type Output = Milliwatts;
    fn mul(self, rhs: f64) -> Milliwatts {
        Milliwatts(self.0 * rhs)
    }
}

/// Ratio of two linear powers expressed in dB.
pub fn ratio_db(num: Milliwatts, den: Milliwatts) -> f64 {
    10.0 * (num.0 / den.0).log10()
}

/// Wavelength (metres) at a carrier frequency.
pub fn wavelength_m(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT_MPS / freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for v in [-110.0, -89.0, 0.0, 20.0] {
            let back = Dbm(v).to_milliwatts().to_dbm().0;
            assert!((back - v).abs() < 1e-9, "{v} -> {back}");
        }
    }

    #[test]
    fn known_conversions() {
        assert!((Dbm(0.0).to_milliwatts().0 - 1.0).abs() < 1e-12);
        assert!((Dbm(20.0).to_milliwatts().0 - 100.0).abs() < 1e-9);
        assert!((Dbm(-30.0).to_milliwatts().0 - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_power_is_neg_inf_dbm() {
        assert_eq!(Milliwatts::ZERO.to_dbm().0, f64::NEG_INFINITY);
    }

    #[test]
    fn power_addition_is_linear() {
        let sum = Dbm(0.0).to_milliwatts() + Dbm(0.0).to_milliwatts();
        assert!(
            (sum.to_dbm().0 - 3.0103).abs() < 1e-3,
            "doubling power adds ~3 dB"
        );
    }

    #[test]
    fn ratio_db_of_tenfold_is_ten() {
        assert!((ratio_db(Milliwatts(10.0), Milliwatts(1.0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn wave_channel_wavelength() {
        let lambda = wavelength_m(CCH_FREQ_HZ);
        assert!(
            (lambda - 0.0509).abs() < 1e-3,
            "5.89 GHz -> ~5.1 cm, got {lambda}"
        );
    }
}
