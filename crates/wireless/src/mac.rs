//! IEEE 802.11p EDCA MAC (broadcast CSMA/CA).
//!
//! The MAC is a reactive state machine: the owner (the co-simulation world)
//! feeds it events — frames to send, timer expiries, medium busy/idle
//! transitions — and executes the [`MacAction`]s it returns (arming timers,
//! starting transmissions). This keeps the MAC free of event-loop ownership
//! and directly unit-testable.
//!
//! Modelled behaviour, following Veins' `Mac1609_4`:
//!
//! - four EDCA access categories with 802.11p AIFSN/CW parameters;
//! - listen-before-talk: a frame arriving to an idle medium is sent after
//!   AIFS without backoff; if the medium was busy, a backoff from
//!   `[0, CW_min]` is drawn (broadcast frames are never retransmitted, so
//!   the contention window does not grow);
//! - backoff freezing: a busy medium pauses the countdown, which resumes
//!   after the medium has been idle for AIFS again;
//! - IEEE 1609.4 channel scheduling: transmissions must fit inside the
//!   current channel interval and may not start during guard time.
//!
//! Simplification: internal (virtual) collisions between access categories
//! are resolved by always transmitting from the highest-priority non-empty
//! queue when the contention completes, rather than running four parallel
//! contention processes. With beacon-style traffic this is behaviourally
//! equivalent and considerably simpler.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use comfase_des::rng::RngStream;
use comfase_des::time::{SimDuration, SimTime};

use crate::frame::{AccessCategory, Wsm};
use crate::mac1609::ChannelSchedule;

/// EDCA parameters of one access category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdcaParams {
    /// Arbitration inter-frame space number (slots after SIFS).
    pub aifsn: u32,
    /// Minimum contention window.
    pub cw_min: u32,
    /// Maximum contention window (unused for broadcast, kept for fidelity).
    pub cw_max: u32,
}

impl EdcaParams {
    /// 802.11p EDCA defaults for an access category.
    pub fn for_category(ac: AccessCategory) -> Self {
        match ac {
            AccessCategory::Vo => EdcaParams {
                aifsn: 2,
                cw_min: 3,
                cw_max: 7,
            },
            AccessCategory::Vi => EdcaParams {
                aifsn: 3,
                cw_min: 7,
                cw_max: 15,
            },
            AccessCategory::Be => EdcaParams {
                aifsn: 6,
                cw_min: 15,
                cw_max: 1023,
            },
            AccessCategory::Bk => EdcaParams {
                aifsn: 9,
                cw_min: 15,
                cw_max: 1023,
            },
        }
    }
}

/// MAC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacConfig {
    /// Slot time (13 µs for 802.11p / 10 MHz).
    pub slot: SimDuration,
    /// SIFS (32 µs for 802.11p / 10 MHz).
    pub sifs: SimDuration,
    /// Per-access-category queue capacity.
    pub queue_capacity: usize,
    /// 1609.4 channel schedule.
    pub schedule: ChannelSchedule,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            slot: SimDuration::from_micros(13),
            sifs: SimDuration::from_micros(32),
            queue_capacity: 64,
            schedule: ChannelSchedule::default(),
        }
    }
}

impl MacConfig {
    /// AIFS duration for a category: SIFS + AIFSN × slot.
    pub fn aifs(&self, ac: AccessCategory) -> SimDuration {
        self.sifs + self.slot * i64::from(EdcaParams::for_category(ac).aifsn)
    }
}

/// Why the MAC dropped a frame without transmitting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The access category queue was full.
    QueueFull,
}

/// What the owner must do after feeding the MAC an event.
#[derive(Debug, Clone, PartialEq)]
pub enum MacAction {
    /// Arm a timer; deliver `token` back via [`Mac::handle_timer`] at `at`.
    SetTimer {
        /// Absolute expiry time.
        at: SimTime,
        /// Opaque token identifying the contention attempt.
        token: u64,
    },
    /// Begin transmitting this frame on the medium now.
    StartTx(Wsm),
    /// The frame was dropped.
    Drop {
        /// The dropped frame.
        wsm: Wsm,
        /// Why.
        reason: DropReason,
    },
}

/// MAC statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacStats {
    /// Frames accepted from the application.
    pub enqueued: u64,
    /// Frames handed to the PHY for transmission.
    pub sent: u64,
    /// Frames dropped due to a full queue.
    pub dropped_queue_full: u64,
    /// Contention attempts that were deferred (busy medium or closed
    /// channel interval); superset of [`MacStats::deferrals_guard`].
    pub deferrals: u64,
    /// Deferrals caused by the IEEE 1609.4 channel schedule (wrong
    /// interval or guard window), as opposed to a busy medium.
    #[serde(default)]
    pub deferrals_guard: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    /// Waiting for the medium to go idle (or the channel interval to open).
    Deferred,
    /// AIFS + backoff countdown is running.
    Contending {
        token: u64,
        started: SimTime,
        aifs_end: SimTime,
        deadline: SimTime,
    },
    Transmitting,
}

/// The EDCA MAC entity of one NIC.
///
/// `Mac` is `Clone`: a clone snapshots the queues, contention state, and RNG
/// stream, so a forked run continues with the exact same backoff draws.
#[derive(Debug, Clone)]
pub struct Mac {
    config: MacConfig,
    queues: [VecDeque<Wsm>; 4],
    state: State,
    medium_busy: bool,
    /// Remaining backoff slots carried across freezes.
    slots_left: u32,
    /// Whether the next contention needs a random backoff (true after the
    /// medium was busy or after our own transmission).
    backoff_required: bool,
    next_token: u64,
    rng: RngStream,
    stats: MacStats,
}

fn ac_index(ac: AccessCategory) -> usize {
    match ac {
        AccessCategory::Vo => 0,
        AccessCategory::Vi => 1,
        AccessCategory::Be => 2,
        AccessCategory::Bk => 3,
    }
}

const AC_ORDER: [AccessCategory; 4] = [
    AccessCategory::Vo,
    AccessCategory::Vi,
    AccessCategory::Be,
    AccessCategory::Bk,
];

impl Mac {
    /// Creates an idle MAC.
    pub fn new(config: MacConfig, rng: RngStream) -> Self {
        Mac {
            config,
            queues: Default::default(),
            state: State::Idle,
            medium_busy: false,
            slots_left: 0,
            backoff_required: false,
            next_token: 0,
            rng,
            stats: MacStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Number of queued frames across all categories.
    pub fn queue_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// `true` while a frame is on the air.
    pub fn is_transmitting(&self) -> bool {
        self.state == State::Transmitting
    }

    /// Accepts a frame from the application.
    pub fn enqueue(&mut self, wsm: Wsm, ac: AccessCategory, now: SimTime) -> Vec<MacAction> {
        let q = &mut self.queues[ac_index(ac)];
        if q.len() >= self.config.queue_capacity {
            self.stats.dropped_queue_full += 1;
            return vec![MacAction::Drop {
                wsm,
                reason: DropReason::QueueFull,
            }];
        }
        q.push_back(wsm);
        self.stats.enqueued += 1;
        if self.state == State::Idle {
            self.try_start_contention(now)
        } else {
            Vec::new()
        }
    }

    /// A timer armed via [`MacAction::SetTimer`] expired.
    pub fn handle_timer(&mut self, token: u64, now: SimTime) -> Vec<MacAction> {
        match self.state {
            State::Contending {
                token: t, deadline, ..
            } if t == token => {
                debug_assert!(now >= deadline);
                self.slots_left = 0;
                self.backoff_required = false;
                // The contention completed on an idle medium; transmit the
                // highest-priority frame if the channel interval allows it.
                let (ac, _) = match self.best_nonempty() {
                    Some(x) => x,
                    None => {
                        self.state = State::Idle;
                        return Vec::new();
                    }
                };
                let wsm = self.queues[ac_index(ac)]
                    .front()
                    .expect("non-empty")
                    .clone();
                let channel = wsm.channel;
                if !self
                    .config
                    .schedule
                    .can_transmit(channel, now, SimDuration::ZERO)
                {
                    // Wrong interval or guard: defer to the next access slot.
                    self.state = State::Deferred;
                    self.stats.deferrals += 1;
                    self.stats.deferrals_guard += 1;
                    let at = self.config.schedule.next_access(channel, now);
                    return self.start_contention_at(at);
                }
                let wsm = self.queues[ac_index(ac)].pop_front().expect("non-empty");
                self.state = State::Transmitting;
                self.stats.sent += 1;
                vec![MacAction::StartTx(wsm)]
            }
            _ => Vec::new(), // stale token
        }
    }

    /// The medium turned busy (carrier sensed or own transmission started).
    pub fn medium_busy(&mut self, now: SimTime) -> Vec<MacAction> {
        self.medium_busy = true;
        if let State::Contending { aifs_end, .. } = self.state {
            // Freeze the backoff: bank the slots not yet counted down.
            if now > aifs_end {
                let consumed =
                    ((now - aifs_end).as_nanos() / self.config.slot.as_nanos().max(1)) as u32;
                self.slots_left = self.slots_left.saturating_sub(consumed);
            }
            self.backoff_required = true;
            self.state = State::Deferred;
            self.stats.deferrals += 1;
        }
        Vec::new()
    }

    /// The medium turned idle again.
    pub fn medium_idle(&mut self, now: SimTime) -> Vec<MacAction> {
        self.medium_busy = false;
        if self.state == State::Deferred {
            self.try_start_contention(now)
        } else {
            Vec::new()
        }
    }

    /// Our own transmission completed.
    pub fn tx_finished(&mut self, now: SimTime) -> Vec<MacAction> {
        assert_eq!(
            self.state,
            State::Transmitting,
            "tx_finished outside transmission"
        );
        self.state = State::Idle;
        // Post-transmission contention always uses a fresh random backoff.
        self.backoff_required = true;
        if self.queue_len() > 0 {
            self.try_start_contention(now)
        } else {
            Vec::new()
        }
    }

    fn best_nonempty(&self) -> Option<(AccessCategory, usize)> {
        AC_ORDER
            .into_iter()
            .map(|ac| (ac, ac_index(ac)))
            .find(|(_, i)| !self.queues[*i].is_empty())
    }

    fn try_start_contention(&mut self, now: SimTime) -> Vec<MacAction> {
        if self.queue_len() == 0 {
            self.state = State::Idle;
            return Vec::new();
        }
        if self.medium_busy {
            self.state = State::Deferred;
            self.backoff_required = true;
            return Vec::new();
        }
        self.start_contention_at(now)
    }

    fn start_contention_at(&mut self, start: SimTime) -> Vec<MacAction> {
        let (ac, _) = self.best_nonempty().expect("queue non-empty");
        let params = EdcaParams::for_category(ac);
        if self.backoff_required && self.slots_left == 0 {
            self.slots_left = self.rng.below(u64::from(params.cw_min) + 1) as u32;
        }
        let aifs_end = start + self.config.aifs(ac);
        let deadline = aifs_end + self.config.slot * i64::from(self.slots_left);
        let token = self.next_token;
        self.next_token += 1;
        self.state = State::Contending {
            token,
            started: start,
            aifs_end,
            deadline,
        };
        vec![MacAction::SetTimer {
            at: deadline,
            token,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{NodeId, WaveChannel};
    use bytes::Bytes;

    fn wsm(seq: u32) -> Wsm {
        Wsm {
            source: NodeId(1),
            sequence: seq,
            created: SimTime::ZERO,
            channel: WaveChannel::Cch,
            payload: Bytes::from_static(b"b"),
        }
    }

    fn mac() -> Mac {
        Mac::new(MacConfig::default(), RngStream::new(7))
    }

    fn fire_all(m: &mut Mac, actions: Vec<MacAction>) -> (Vec<Wsm>, SimTime) {
        // Drive timers until a StartTx appears (or actions run dry).
        let mut queue = actions;
        let mut sent = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some(a) = queue.pop() {
            match a {
                MacAction::SetTimer { at, token } => {
                    last = at;
                    queue.extend(m.handle_timer(token, at));
                }
                MacAction::StartTx(w) => sent.push(w),
                MacAction::Drop { .. } => {}
            }
        }
        (sent, last)
    }

    #[test]
    fn idle_medium_sends_after_aifs_without_backoff() {
        let mut m = mac();
        let actions = m.enqueue(wsm(0), AccessCategory::Vo, SimTime::ZERO);
        match &actions[..] {
            [MacAction::SetTimer { at, .. }] => {
                // AIFS(VO) = 32 + 2*13 = 58 us, no backoff on idle medium.
                assert_eq!(*at, SimTime::from_micros(58));
            }
            other => panic!("unexpected {other:?}"),
        }
        let (sent, _) = fire_all(&mut m, actions);
        assert_eq!(sent.len(), 1);
        assert!(m.is_transmitting());
        assert_eq!(m.stats().sent, 1);
    }

    #[test]
    fn aifs_ordering_across_categories() {
        let cfg = MacConfig::default();
        assert!(cfg.aifs(AccessCategory::Vo) < cfg.aifs(AccessCategory::Vi));
        assert!(cfg.aifs(AccessCategory::Vi) < cfg.aifs(AccessCategory::Be));
        assert!(cfg.aifs(AccessCategory::Be) < cfg.aifs(AccessCategory::Bk));
        assert_eq!(
            cfg.aifs(AccessCategory::Be),
            SimDuration::from_micros(32 + 6 * 13)
        );
    }

    #[test]
    fn busy_medium_defers_enqueue() {
        let mut m = mac();
        m.medium_busy(SimTime::ZERO);
        let actions = m.enqueue(wsm(0), AccessCategory::Vo, SimTime::ZERO);
        assert!(actions.is_empty(), "no timer while busy");
        // Idle at 1 ms: contention starts, with a random backoff drawn.
        let actions = m.medium_idle(SimTime::from_millis(1));
        assert_eq!(actions.len(), 1);
        let (sent, when) = fire_all(&mut m, actions);
        assert_eq!(sent.len(), 1);
        assert!(when >= SimTime::from_millis(1) + SimDuration::from_micros(58));
    }

    #[test]
    fn backoff_freezes_and_resumes() {
        let mut m = mac();
        // Force a post-busy contention so a backoff is drawn.
        m.medium_busy(SimTime::ZERO);
        m.enqueue(wsm(0), AccessCategory::Be, SimTime::ZERO);
        let actions = m.medium_idle(SimTime::from_millis(1));
        let deadline1 = match &actions[..] {
            [MacAction::SetTimer { at, .. }] => *at,
            other => panic!("{other:?}"),
        };
        // Medium busy again halfway through AIFS: freeze, nothing sent.
        m.medium_busy(SimTime::from_millis(1) + SimDuration::from_micros(10));
        // Stale timer must be ignored.
        let stale = m.handle_timer(0, deadline1);
        assert!(stale.is_empty());
        // Idle again: a new timer is armed and eventually fires.
        let actions = m.medium_idle(SimTime::from_millis(2));
        let (sent, _) = fire_all(&mut m, actions);
        assert_eq!(sent.len(), 1);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut m = Mac::new(
            MacConfig {
                queue_capacity: 2,
                ..MacConfig::default()
            },
            RngStream::new(1),
        );
        m.medium_busy(SimTime::ZERO); // keep frames queued
        m.enqueue(wsm(0), AccessCategory::Vo, SimTime::ZERO);
        m.enqueue(wsm(1), AccessCategory::Vo, SimTime::ZERO);
        let actions = m.enqueue(wsm(2), AccessCategory::Vo, SimTime::ZERO);
        assert!(matches!(
            actions[..],
            [MacAction::Drop {
                reason: DropReason::QueueFull,
                ..
            }]
        ));
        assert_eq!(m.stats().dropped_queue_full, 1);
        assert_eq!(m.queue_len(), 2);
    }

    #[test]
    fn higher_priority_queue_wins() {
        let mut m = mac();
        m.medium_busy(SimTime::ZERO);
        m.enqueue(wsm(10), AccessCategory::Bk, SimTime::ZERO);
        m.enqueue(wsm(20), AccessCategory::Vo, SimTime::ZERO);
        let actions = m.medium_idle(SimTime::from_millis(1));
        let (sent, _) = fire_all(&mut m, actions);
        assert_eq!(sent[0].sequence, 20, "VO preempts BK");
    }

    #[test]
    fn tx_finished_triggers_next_frame() {
        let mut m = mac();
        m.enqueue(wsm(0), AccessCategory::Vo, SimTime::ZERO);
        m.enqueue(wsm(1), AccessCategory::Vo, SimTime::ZERO);
        let actions: Vec<MacAction> = m
            .enqueue(wsm(2), AccessCategory::Vo, SimTime::ZERO)
            .into_iter()
            .collect();
        assert!(actions.is_empty(), "contention already running");
        let first = m.handle_timer(0, SimTime::from_micros(58));
        assert!(matches!(first[..], [MacAction::StartTx(_)]));
        // Finish the transmission; the MAC contends for the next frame.
        let next = m.tx_finished(SimTime::from_micros(138));
        assert_eq!(next.len(), 1);
        let (sent, _) = fire_all(&mut m, next);
        assert_eq!(sent.len(), 1);
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    #[should_panic(expected = "tx_finished outside transmission")]
    fn tx_finished_when_not_transmitting_panics() {
        mac().tx_finished(SimTime::ZERO);
    }

    #[test]
    fn deterministic_backoff_for_equal_seeds() {
        let run = |seed| {
            let mut m = Mac::new(MacConfig::default(), RngStream::new(seed));
            m.medium_busy(SimTime::ZERO);
            m.enqueue(wsm(0), AccessCategory::Be, SimTime::ZERO);
            match m.medium_idle(SimTime::from_millis(1))[..] {
                [MacAction::SetTimer { at, .. }] => at,
                _ => panic!(),
            }
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn channel_switching_defers_to_cch_interval() {
        let cfg = MacConfig {
            schedule: ChannelSchedule::alternating(),
            ..MacConfig::default()
        };
        let mut m = Mac::new(cfg, RngStream::new(1));
        // Enqueue during the SCH interval (60 ms).
        let actions = m.enqueue(wsm(0), AccessCategory::Vo, SimTime::from_millis(60));
        // Contention timer fires in SCH interval; MAC defers to next CCH
        // access and re-arms.
        let mut queue = actions;
        let mut sent = Vec::new();
        let mut hops = 0;
        while let Some(a) = queue.pop() {
            match a {
                MacAction::SetTimer { at, token } => {
                    hops += 1;
                    assert!(hops < 10, "must converge");
                    queue.extend(m.handle_timer(token, at));
                }
                MacAction::StartTx(w) => sent.push(w),
                MacAction::Drop { .. } => {}
            }
        }
        assert_eq!(sent.len(), 1);
        assert!(m.stats().deferrals >= 1);
    }
}
