//! Analogue channel models: how transmit power decays with distance.
//!
//! The paper's experiments use the **free space path loss** model ("it
//! models a situation where the distance between the vehicles are minimized
//! and is free of obstacles such as in a platooning scenario", §IV-A.2);
//! Veins additionally ships a two-ray interference model, which we provide
//! for ablations.

use serde::{Deserialize, Serialize};

use crate::geom::Position;
use crate::units::{wavelength_m, Dbm, Milliwatts};

/// An analogue wireless channel model — the paper's `wirelessModel`
/// configuration parameter.
pub trait PathLossModel: std::fmt::Debug + Send + Sync {
    /// Received power at `rx` for a transmission of `tx_power` from `tx`.
    fn received_power(
        &self,
        tx_power: Milliwatts,
        freq_hz: f64,
        tx: &Position,
        rx: &Position,
    ) -> Milliwatts;

    /// A conservative range bound: for any pair of positions whose ground
    /// (2D) distance exceeds the returned value, `received_power` is
    /// guaranteed strictly below `threshold`. `None` means no finite bound
    /// is known and callers must assume every node is reachable. The grid
    /// fan-out index uses this (inverted at the fan-out pruning threshold)
    /// as its cell size.
    fn max_range_m(&self, tx_power: Milliwatts, freq_hz: f64, threshold: Dbm) -> Option<f64> {
        let _ = (tx_power, freq_hz, threshold);
        None
    }

    /// Model name for configuration dumps.
    fn name(&self) -> &'static str;

    /// Clones the model into a new box (needed to snapshot a [`Medium`]
    /// that owns its model as a trait object).
    ///
    /// [`Medium`]: crate::channel::Medium
    fn clone_box(&self) -> Box<dyn PathLossModel>;
}

impl Clone for Box<dyn PathLossModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Invert the Friis formula: the distance at which
/// `P_tx · (λ / 4πd)^α` drops to `threshold`.
///
/// Returns `None` when the inputs do not admit a finite positive bound
/// (non-finite threshold, zero power, ...), in which case the caller must
/// fall back to assuming unbounded range. The result carries a small
/// multiplicative margin so that floating-point noise in the forward
/// formula can never place a node just outside the bound while its
/// received power still reaches `threshold`.
fn friis_range_m(alpha: f64, tx_power: Milliwatts, freq_hz: f64, threshold: Dbm) -> Option<f64> {
    let t = threshold.to_milliwatts();
    let invertible = t.0.is_finite() && t.0 > 0.0 && tx_power.0 > 0.0 && alpha > 0.0;
    if !invertible {
        return None;
    }
    if tx_power.0 <= t.0 {
        // The model caps gain at unity, so power below threshold at the
        // antenna is below threshold everywhere; any positive range works.
        return Some(1.0);
    }
    let lambda = wavelength_m(freq_hz);
    let d = lambda / (4.0 * std::f64::consts::PI) * (tx_power.0 / t.0).powf(1.0 / alpha);
    let d = (d * (1.0 + 1e-6)).max(1.0);
    d.is_finite().then_some(d)
}

/// Free-space (Friis) path loss with configurable exponent.
///
/// `P_rx = P_tx * (λ / 4πd)^α` with α = 2 in true free space. Veins'
/// `SimplePathlossModel` uses the same formula with configurable alpha.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeSpace {
    /// Path loss exponent α (2.0 = ideal free space).
    pub alpha: f64,
}

impl Default for FreeSpace {
    fn default() -> Self {
        FreeSpace { alpha: 2.0 }
    }
}

impl PathLossModel for FreeSpace {
    fn received_power(
        &self,
        tx_power: Milliwatts,
        freq_hz: f64,
        tx: &Position,
        rx: &Position,
    ) -> Milliwatts {
        let d = tx.distance_to(rx);
        if d < 1e-9 {
            return tx_power;
        }
        let lambda = wavelength_m(freq_hz);
        let factor = (lambda / (4.0 * std::f64::consts::PI * d)).powf(self.alpha);
        tx_power * factor.min(1.0)
    }

    fn max_range_m(&self, tx_power: Milliwatts, freq_hz: f64, threshold: Dbm) -> Option<f64> {
        friis_range_m(self.alpha, tx_power, freq_hz, threshold)
    }

    fn name(&self) -> &'static str {
        "FreeSpace"
    }

    fn clone_box(&self) -> Box<dyn PathLossModel> {
        Box::new(*self)
    }
}

/// Two-ray interference model (direct ray + ground reflection), after
/// Sommer et al., as implemented in Veins' `TwoRayInterferenceModel`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoRayInterference {
    /// Relative permittivity of the ground (Veins default 1.02).
    pub epsilon_r: f64,
}

impl Default for TwoRayInterference {
    fn default() -> Self {
        TwoRayInterference { epsilon_r: 1.02 }
    }
}

impl PathLossModel for TwoRayInterference {
    fn received_power(
        &self,
        tx_power: Milliwatts,
        freq_hz: f64,
        tx: &Position,
        rx: &Position,
    ) -> Milliwatts {
        let d = tx.ground_distance_to(rx);
        if d < 1e-9 {
            return tx_power;
        }
        let ht = tx.z;
        let hr = rx.z;
        let lambda = wavelength_m(freq_hz);
        // Direct and reflected path lengths.
        let d_los = (d * d + (ht - hr) * (ht - hr)).sqrt();
        let d_ref = (d * d + (ht + hr) * (ht + hr)).sqrt();
        // Grazing angle and reflection coefficient (vertical polarisation).
        let sin_theta = (ht + hr) / d_ref;
        let cos_theta = d / d_ref;
        let er = self.epsilon_r;
        let gamma = (sin_theta - (er - cos_theta * cos_theta).sqrt())
            / (sin_theta + (er - cos_theta * cos_theta).sqrt());
        let phi = 2.0 * std::f64::consts::PI * (d_los - d_ref) / lambda;
        // Interference of the two rays.
        let re = 1.0 / d_los + gamma * phi.cos() / d_ref;
        let im = gamma * phi.sin() / d_ref;
        let magnitude = (re * re + im * im).sqrt();
        let factor = (lambda / (4.0 * std::f64::consts::PI)).powi(2) * magnitude * magnitude;
        tx_power * factor.min(1.0)
    }

    fn max_range_m(&self, tx_power: Milliwatts, freq_hz: f64, threshold: Dbm) -> Option<f64> {
        // |Γ| ≤ 1, so |re| ≤ 2/d_los and |im| ≤ 1/d_ref ≤ 1/d_los, giving
        // magnitude² ≤ 5/d_los² — i.e. two-ray can never exceed free space
        // (α = 2) by more than 10·log10(5) ≈ 7 dB of constructive fading.
        // Inverting Friis at a threshold lowered by that envelope yields a
        // conservative ground-distance bound (d_los ≥ ground distance).
        let envelope_db = 10.0 * 5f64.log10();
        friis_range_m(2.0, tx_power, freq_hz, Dbm(threshold.0 - envelope_db))
    }

    fn name(&self) -> &'static str {
        "TwoRayInterference"
    }

    fn clone_box(&self) -> Box<dyn PathLossModel> {
        Box::new(*self)
    }
}

/// Free-space path loss with spatially correlated log-normal shadowing.
///
/// Shadowing (obstruction-induced slow fading) is modelled as a
/// deterministic pseudo-random field over space: the dB offset is drawn
/// from a hash of the quantised link midpoint, so nearby positions share
/// their shadowing value (spatial correlation), repeated evaluations are
/// reproducible, and no RNG state is needed in the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalShadowing {
    /// Median path loss model parameters (free space with this exponent).
    pub alpha: f64,
    /// Standard deviation of the shadowing term, dB (3–8 dB typical).
    pub sigma_db: f64,
    /// Spatial correlation distance: midpoints within the same cell of
    /// this size share one shadowing draw, metres.
    pub correlation_m: f64,
    /// Seed of the shadowing field.
    pub seed: u64,
}

impl Default for LogNormalShadowing {
    fn default() -> Self {
        LogNormalShadowing {
            alpha: 2.0,
            sigma_db: 4.0,
            correlation_m: 10.0,
            seed: 0x5AD0,
        }
    }
}

impl LogNormalShadowing {
    /// Hard cap on a shadowing draw, in standard deviations.
    ///
    /// Box-Muller with `u1 ≥ 2⁻⁵³` bounds the normal magnitude by
    /// `√(2·53·ln 2) ≈ 8.5716`, so a draw can never add more than
    /// `MAX_SHADOW_SIGMAS · sigma_db` dB of constructive shadowing.
    pub const MAX_SHADOW_SIGMAS: f64 = 8.58;

    /// The shadowing offset in dB for a link with the given midpoint.
    pub fn shadow_db(&self, mid_x: f64, mid_y: f64) -> f64 {
        let qx = (mid_x / self.correlation_m).floor() as i64;
        let qy = (mid_y / self.correlation_m).floor() as i64;
        // SplitMix64-style avalanche over the cell coordinates.
        let mut z = self
            .seed
            .wrapping_add((qx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((qy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Two uniforms -> one standard normal (Box-Muller, cos branch).
        let u1 = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = ((z.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64) / (1u64 << 53) as f64;
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        n * self.sigma_db
    }
}

impl PathLossModel for LogNormalShadowing {
    fn received_power(
        &self,
        tx_power: Milliwatts,
        freq_hz: f64,
        tx: &Position,
        rx: &Position,
    ) -> Milliwatts {
        let median = FreeSpace { alpha: self.alpha }.received_power(tx_power, freq_hz, tx, rx);
        let shadow = self.shadow_db((tx.x + rx.x) / 2.0, (tx.y + rx.y) / 2.0);
        let factor = 10f64.powf(shadow / 10.0);
        Milliwatts((median.0 * factor).min(tx_power.0))
    }

    fn max_range_m(&self, tx_power: Milliwatts, freq_hz: f64, threshold: Dbm) -> Option<f64> {
        let worst_gain_db = Self::MAX_SHADOW_SIGMAS * self.sigma_db.abs();
        friis_range_m(
            self.alpha,
            tx_power,
            freq_hz,
            Dbm(threshold.0 - worst_gain_db),
        )
    }

    fn name(&self) -> &'static str {
        "LogNormalShadowing"
    }

    fn clone_box(&self) -> Box<dyn PathLossModel> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Dbm, CCH_FREQ_HZ};

    fn p(x: f64) -> Position {
        Position::on_road(x, 0.0)
    }

    #[test]
    fn free_space_decays_with_square_of_distance() {
        let m = FreeSpace::default();
        let tx = Dbm(20.0).to_milliwatts();
        let p10 = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(10.0));
        let p100 = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(100.0));
        // 10x distance => 20 dB loss at alpha 2.
        let loss_db = 10.0 * (p10.0 / p100.0).log10();
        assert!((loss_db - 20.0).abs() < 1e-6, "loss {loss_db}");
    }

    #[test]
    fn free_space_matches_friis_at_100m() {
        // FSPL(dB) = 20 log10(d) + 20 log10(f) - 147.55 ~ 87.9 dB at 100 m, 5.89 GHz.
        let m = FreeSpace::default();
        let tx = Dbm(20.0).to_milliwatts();
        let rx = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(100.0));
        let fspl = 20.0 - rx.to_dbm().0;
        assert!((fspl - 87.85).abs() < 0.2, "FSPL {fspl}");
    }

    #[test]
    fn higher_alpha_means_more_loss() {
        let tx = Dbm(20.0).to_milliwatts();
        let a2 = FreeSpace { alpha: 2.0 }.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(50.0));
        let a3 = FreeSpace { alpha: 3.0 }.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(50.0));
        assert!(a3.0 < a2.0);
    }

    #[test]
    fn zero_distance_returns_tx_power() {
        let tx = Dbm(20.0).to_milliwatts();
        let rx = FreeSpace::default().received_power(tx, CCH_FREQ_HZ, &p(5.0), &p(5.0));
        assert_eq!(rx.0, tx.0);
    }

    #[test]
    fn gain_never_exceeds_unity() {
        let tx = Dbm(20.0).to_milliwatts();
        let rx = FreeSpace::default().received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(0.001));
        assert!(rx.0 <= tx.0);
    }

    #[test]
    fn two_ray_close_range_similar_to_free_space() {
        let tx = Dbm(20.0).to_milliwatts();
        let fs = FreeSpace::default().received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(20.0));
        let tr = TwoRayInterference::default().received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(20.0));
        let diff_db = (fs.to_dbm().0 - tr.to_dbm().0).abs();
        assert!(
            diff_db < 12.0,
            "two-ray within fading envelope of free space, diff {diff_db} dB"
        );
    }

    #[test]
    fn two_ray_decays_faster_far_out() {
        let tx = Dbm(20.0).to_milliwatts();
        let m = TwoRayInterference::default();
        let near = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(100.0));
        let far = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(5000.0));
        // Beyond the crossover distance (~0.9 km at these antenna heights)
        // two-ray behaves like d^-4, so 100 m -> 5 km loses much more than
        // the ~34 dB free space would predict.
        let loss_db = 10.0 * (near.0 / far.0).log10();
        assert!(loss_db > 42.0, "far-field loss only {loss_db} dB");
    }

    #[test]
    fn model_names() {
        assert_eq!(FreeSpace::default().name(), "FreeSpace");
        assert_eq!(TwoRayInterference::default().name(), "TwoRayInterference");
        assert_eq!(LogNormalShadowing::default().name(), "LogNormalShadowing");
    }

    #[test]
    fn shadowing_is_deterministic_and_correlated() {
        let m = LogNormalShadowing::default();
        // Same cell -> same draw.
        assert_eq!(m.shadow_db(103.0, 1.0), m.shadow_db(104.5, 2.0));
        // Different cells almost surely differ.
        assert_ne!(m.shadow_db(103.0, 1.0), m.shadow_db(203.0, 1.0));
        // Different seeds produce a different field.
        let other = LogNormalShadowing { seed: 99, ..m };
        assert_ne!(m.shadow_db(103.0, 1.0), other.shadow_db(103.0, 1.0));
    }

    #[test]
    fn shadowing_statistics_match_sigma() {
        let m = LogNormalShadowing::default();
        let n = 10_000;
        let draws: Vec<f64> = (0..n).map(|i| m.shadow_db(i as f64 * 50.0, 0.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - m.sigma_db).abs() < 0.3, "sd {}", var.sqrt());
    }

    #[test]
    fn max_range_is_conservative_for_all_models() {
        let tx = Dbm(13.0).to_milliwatts();
        let threshold = Dbm(-120.0);
        let models: Vec<Box<dyn PathLossModel>> = vec![
            Box::new(FreeSpace::default()),
            Box::new(FreeSpace { alpha: 3.0 }),
            Box::new(TwoRayInterference::default()),
            Box::new(LogNormalShadowing::default()),
        ];
        for m in &models {
            let range = m
                .max_range_m(tx, CCH_FREQ_HZ, threshold)
                .unwrap_or_else(|| panic!("{} should have a finite range", m.name()));
            assert!(range >= 1.0 && range.is_finite(), "{}: {range}", m.name());
            // Sample ground distances beyond the bound: received power must
            // stay strictly below the threshold.
            for k in 1..=50 {
                let d = range * (1.0 + k as f64 * 0.1);
                let rx = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(d));
                assert!(
                    rx.to_dbm().0 < threshold.0,
                    "{} at {d:.1} m received {:.2} dBm >= {:.2} dBm (range {range:.1})",
                    m.name(),
                    rx.to_dbm().0,
                    threshold.0
                );
            }
        }
    }

    #[test]
    fn free_space_range_is_tight() {
        // Just inside the bound the power is still at/above threshold, so the
        // inversion is not wastefully loose for the exact Friis model.
        let m = FreeSpace::default();
        let tx = Dbm(13.0).to_milliwatts();
        let threshold = Dbm(-120.0);
        let range = m.max_range_m(tx, CCH_FREQ_HZ, threshold).unwrap();
        let rx = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(range * 0.999));
        assert!(rx.to_dbm().0 >= threshold.0, "{}", rx.to_dbm().0);
    }

    #[test]
    fn max_range_degenerate_inputs() {
        let m = FreeSpace::default();
        // Non-finite or non-positive thresholds give no bound.
        assert_eq!(
            m.max_range_m(Milliwatts(20.0), CCH_FREQ_HZ, Dbm(f64::NEG_INFINITY)),
            None
        );
        assert_eq!(
            m.max_range_m(Milliwatts(20.0), CCH_FREQ_HZ, Dbm(f64::NAN)),
            None
        );
        assert_eq!(
            m.max_range_m(Milliwatts(0.0), CCH_FREQ_HZ, Dbm(-90.0)),
            None
        );
        // Power already below threshold: any positive range is valid.
        assert_eq!(
            m.max_range_m(Milliwatts(1e-15), CCH_FREQ_HZ, Dbm(-90.0)),
            Some(1.0)
        );
    }

    #[test]
    fn shadowing_never_gains_above_tx_power() {
        let m = LogNormalShadowing::default();
        let tx = Dbm(13.0).to_milliwatts();
        for i in 0..500 {
            let rx = m.received_power(tx, CCH_FREQ_HZ, &p(0.0), &p(0.5 + i as f64));
            assert!(rx.0 <= tx.0);
        }
    }
}
