//! IEEE 1609.4 multi-channel operation: the CCH/SCH switching schedule.
//!
//! WAVE radios alternate between the control channel (CCH) and a service
//! channel (SCH) in 50 ms intervals synchronised to UTC, with a 4 ms guard
//! at the start of each interval during which nothing may be transmitted.
//! Safety beacons (the platooning messages attacked in the paper) live on
//! the CCH.

use serde::{Deserialize, Serialize};

use comfase_des::time::{SimDuration, SimTime};

use crate::frame::WaveChannel;

/// The 1609.4 channel-switching schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSchedule {
    /// Whether alternating access is active. When `false` the radio stays
    /// on the CCH continuously (Veins' and Plexe's default for platooning
    /// experiments), and SCH traffic is never allowed.
    pub switching: bool,
    /// Length of one channel interval (default 50 ms).
    pub interval: SimDuration,
    /// Guard time at the start of each interval (default 4 ms).
    pub guard: SimDuration,
}

impl Default for ChannelSchedule {
    fn default() -> Self {
        ChannelSchedule {
            switching: false,
            interval: SimDuration::from_millis(50),
            guard: SimDuration::from_millis(4),
        }
    }
}

impl ChannelSchedule {
    /// A schedule with alternating CCH/SCH access enabled.
    pub fn alternating() -> Self {
        ChannelSchedule {
            switching: true,
            ..ChannelSchedule::default()
        }
    }

    /// Which channel the radio listens to at `now`.
    pub fn active_channel(&self, now: SimTime) -> WaveChannel {
        if !self.switching {
            return WaveChannel::Cch;
        }
        let sync = self.interval * 2;
        let within = SimDuration::from_nanos(now.as_nanos().rem_euclid(sync.as_nanos()));
        if within < self.interval {
            WaveChannel::Cch
        } else {
            WaveChannel::Sch1
        }
    }

    /// `true` if `now` falls into a guard interval.
    pub fn in_guard(&self, now: SimTime) -> bool {
        if !self.switching {
            return false;
        }
        let within = SimDuration::from_nanos(now.as_nanos().rem_euclid(self.interval.as_nanos()));
        within < self.guard
    }

    /// `true` if a transmission on `channel` lasting `duration` may start
    /// at `now`: right channel, not in guard, and finishes before the
    /// interval ends.
    pub fn can_transmit(&self, channel: WaveChannel, now: SimTime, duration: SimDuration) -> bool {
        if !self.switching {
            return channel == WaveChannel::Cch;
        }
        if self.active_channel(now) != channel || self.in_guard(now) {
            return false;
        }
        let within = SimDuration::from_nanos(now.as_nanos().rem_euclid(self.interval.as_nanos()));
        within + duration <= self.interval
    }

    /// The next instant at or after `now` when contention for `channel` may
    /// begin (start of the channel's next usable window, after the guard).
    ///
    /// Returns `now` if transmission-eligible time is already running.
    pub fn next_access(&self, channel: WaveChannel, now: SimTime) -> SimTime {
        if !self.switching {
            return now;
        }
        if self.active_channel(now) == channel && !self.in_guard(now) {
            return now;
        }
        // Scan forward in guard-sized steps bounded by one sync period.
        let mut t = now;
        let step = SimDuration::from_micros(250);
        let horizon = now + self.interval * 4;
        while t <= horizon {
            if self.active_channel(t) == channel && !self.in_guard(t) {
                return t;
            }
            t += step;
        }
        unreachable!("a channel interval always occurs within two sync periods");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(ms: i64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn continuous_access_is_always_cch() {
        let s = ChannelSchedule::default();
        assert!(!s.switching);
        for ms in [0, 25, 50, 75, 1000] {
            assert_eq!(s.active_channel(at_ms(ms)), WaveChannel::Cch);
            assert!(!s.in_guard(at_ms(ms)));
            assert!(s.can_transmit(WaveChannel::Cch, at_ms(ms), SimDuration::from_micros(80)));
            assert!(!s.can_transmit(WaveChannel::Sch1, at_ms(ms), SimDuration::from_micros(80)));
        }
    }

    #[test]
    fn alternating_intervals() {
        let s = ChannelSchedule::alternating();
        assert_eq!(s.active_channel(at_ms(10)), WaveChannel::Cch);
        assert_eq!(s.active_channel(at_ms(60)), WaveChannel::Sch1);
        assert_eq!(s.active_channel(at_ms(110)), WaveChannel::Cch);
        assert_eq!(s.active_channel(at_ms(160)), WaveChannel::Sch1);
    }

    #[test]
    fn guard_interval_blocks_transmission() {
        let s = ChannelSchedule::alternating();
        assert!(s.in_guard(at_ms(0)));
        assert!(s.in_guard(at_ms(52)));
        assert!(!s.in_guard(at_ms(5)));
        assert!(!s.can_transmit(WaveChannel::Cch, at_ms(1), SimDuration::from_micros(80)));
        assert!(s.can_transmit(WaveChannel::Cch, at_ms(5), SimDuration::from_micros(80)));
    }

    #[test]
    fn frame_must_fit_in_interval() {
        let s = ChannelSchedule::alternating();
        // 49.9 ms into the CCH interval, an 80 us frame does not fit...
        assert!(!s.can_transmit(
            WaveChannel::Cch,
            at_ms(49) + SimDuration::from_micros(950),
            SimDuration::from_micros(80)
        ));
        // ...but fits with 100 us to spare.
        assert!(s.can_transmit(
            WaveChannel::Cch,
            at_ms(49) + SimDuration::from_micros(900),
            SimDuration::from_micros(80)
        ));
    }

    #[test]
    fn next_access_from_wrong_interval() {
        let s = ChannelSchedule::alternating();
        // At 60 ms (SCH interval), next CCH access is at 104 ms (after guard).
        let next = s.next_access(WaveChannel::Cch, at_ms(60));
        assert!(next >= at_ms(104), "{next}");
        assert!(next < at_ms(106), "{next}");
        assert_eq!(s.active_channel(next), WaveChannel::Cch);
        assert!(!s.in_guard(next));
    }

    #[test]
    fn next_access_now_when_eligible() {
        let s = ChannelSchedule::alternating();
        assert_eq!(s.next_access(WaveChannel::Cch, at_ms(10)), at_ms(10));
        let cont = ChannelSchedule::default();
        assert_eq!(cont.next_access(WaveChannel::Cch, at_ms(60)), at_ms(60));
    }
}
