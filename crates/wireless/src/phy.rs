//! IEEE 802.11p OFDM physical layer: bitrates and frame timing.
//!
//! 802.11p uses 10 MHz channels, doubling all 802.11a timing parameters:
//! 8 µs OFDM symbols, a 32 µs preamble and an 8 µs SIGNAL field.

use serde::{Deserialize, Serialize};

use comfase_des::time::SimDuration;

use crate::units::{Dbm, Milliwatts};

/// OFDM symbol duration for a 10 MHz channel, µs.
const SYMBOL_US: i64 = 8;
/// PLCP preamble duration, µs.
const PREAMBLE_US: i64 = 32;
/// SIGNAL field duration, µs.
const SIGNAL_US: i64 = 8;
/// PLCP service field bits prepended to the PSDU.
const SERVICE_BITS: usize = 16;
/// Convolutional coder tail bits appended to the PSDU.
const TAIL_BITS: usize = 6;

/// 802.11p modulation and coding scheme (10 MHz channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Mcs {
    /// BPSK 1/2 — 3 Mbit/s.
    Bpsk12,
    /// BPSK 3/4 — 4.5 Mbit/s.
    Bpsk34,
    /// QPSK 1/2 — 6 Mbit/s (the Veins/Plexe default).
    #[default]
    Qpsk12,
    /// QPSK 3/4 — 9 Mbit/s.
    Qpsk34,
    /// 16-QAM 1/2 — 12 Mbit/s.
    Qam16_12,
    /// 16-QAM 3/4 — 18 Mbit/s.
    Qam16_34,
    /// 64-QAM 2/3 — 24 Mbit/s.
    Qam64_23,
    /// 64-QAM 3/4 — 27 Mbit/s.
    Qam64_34,
}

impl Mcs {
    /// Data rate in bits per second.
    pub fn bitrate_bps(self) -> u64 {
        match self {
            Mcs::Bpsk12 => 3_000_000,
            Mcs::Bpsk34 => 4_500_000,
            Mcs::Qpsk12 => 6_000_000,
            Mcs::Qpsk34 => 9_000_000,
            Mcs::Qam16_12 => 12_000_000,
            Mcs::Qam16_34 => 18_000_000,
            Mcs::Qam64_23 => 24_000_000,
            Mcs::Qam64_34 => 27_000_000,
        }
    }

    /// Data bits carried per OFDM symbol.
    pub fn bits_per_symbol(self) -> usize {
        (self.bitrate_bps() as i64 * SYMBOL_US / 1_000_000) as usize
    }

    /// Minimum SNIR in dB needed to decode this MCS reliably
    /// (threshold-decider operating points, after Veins/NIST tables).
    pub fn snir_threshold_db(self) -> f64 {
        match self {
            Mcs::Bpsk12 => 1.0,
            Mcs::Bpsk34 => 4.0,
            Mcs::Qpsk12 => 6.0,
            Mcs::Qpsk34 => 8.5,
            Mcs::Qam16_12 => 11.5,
            Mcs::Qam16_34 => 15.0,
            Mcs::Qam64_23 => 19.5,
            Mcs::Qam64_34 => 21.0,
        }
    }
}

/// On-air duration of a frame of `psdu_bits` (MAC frame bits) at `mcs`.
pub fn frame_duration(psdu_bits: usize, mcs: Mcs) -> SimDuration {
    let data_bits = SERVICE_BITS + psdu_bits + TAIL_BITS;
    let symbols = data_bits.div_ceil(mcs.bits_per_symbol());
    SimDuration::from_micros(PREAMBLE_US + SIGNAL_US + symbols as i64 * SYMBOL_US)
}

/// Radio configuration of one NIC — part of the paper's `CommModel`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyConfig {
    /// Transmit power.
    pub tx_power: Milliwatts,
    /// Modulation and coding scheme for all transmissions.
    pub mcs: Mcs,
    /// Receiver sensitivity: weaker frames are invisible (not even noise).
    pub sensitivity: Dbm,
    /// Carrier-sense threshold: frames above this make the medium busy.
    pub cs_threshold: Dbm,
    /// Thermal noise floor.
    pub noise_floor: Dbm,
}

impl Default for PhyConfig {
    /// Veins 802.11p defaults: 20 mW transmit power, QPSK 1/2 (6 Mbit/s),
    /// -89 dBm sensitivity, -65 dBm carrier sense, -110 dBm noise.
    fn default() -> Self {
        PhyConfig {
            tx_power: Milliwatts(20.0),
            mcs: Mcs::default(),
            sensitivity: Dbm(-89.0),
            cs_threshold: Dbm(-65.0),
            noise_floor: Dbm(crate::units::THERMAL_NOISE_DBM),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrates_match_standard_table() {
        assert_eq!(Mcs::Bpsk12.bitrate_bps(), 3_000_000);
        assert_eq!(Mcs::Qpsk12.bitrate_bps(), 6_000_000);
        assert_eq!(Mcs::Qam64_34.bitrate_bps(), 27_000_000);
    }

    #[test]
    fn bits_per_symbol() {
        assert_eq!(Mcs::Bpsk12.bits_per_symbol(), 24);
        assert_eq!(Mcs::Qpsk12.bits_per_symbol(), 48);
        assert_eq!(Mcs::Qam64_34.bits_per_symbol(), 216);
    }

    #[test]
    fn frame_duration_of_paper_beacon() {
        // 200-bit PSDU at 6 Mbit/s: data bits = 16+200+6 = 222 -> 5 symbols
        // -> 40 us PLCP + 40 us data = 80 us.
        let d = frame_duration(200, Mcs::Qpsk12);
        assert_eq!(d, SimDuration::from_micros(80));
    }

    #[test]
    fn duration_grows_with_size_and_shrinks_with_rate() {
        let small = frame_duration(200, Mcs::Qpsk12);
        let large = frame_duration(4000, Mcs::Qpsk12);
        let fast = frame_duration(4000, Mcs::Qam64_34);
        assert!(large > small);
        assert!(fast < large);
    }

    #[test]
    fn minimum_one_symbol() {
        let d = frame_duration(0, Mcs::Qam64_34);
        assert_eq!(
            d,
            SimDuration::from_micros(PREAMBLE_US + SIGNAL_US + SYMBOL_US)
        );
    }

    #[test]
    fn snir_thresholds_increase_with_rate() {
        let mut last = 0.0;
        for mcs in [
            Mcs::Bpsk12,
            Mcs::Bpsk34,
            Mcs::Qpsk12,
            Mcs::Qpsk34,
            Mcs::Qam16_12,
            Mcs::Qam16_34,
            Mcs::Qam64_23,
            Mcs::Qam64_34,
        ] {
            assert!(mcs.snir_threshold_db() > last);
            last = mcs.snir_threshold_db();
        }
    }

    #[test]
    fn default_config_is_veins_like() {
        let c = PhyConfig::default();
        assert_eq!(c.tx_power.0, 20.0);
        assert_eq!(c.sensitivity.0, -89.0);
        assert_eq!(c.mcs, Mcs::Qpsk12);
    }
}
