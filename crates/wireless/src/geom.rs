//! Antenna positions in 3D space.

use serde::{Deserialize, Serialize};

/// A position in metres: `x` along the road, `y` lateral, `z` height.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Longitudinal coordinate, metres.
    pub x: f64,
    /// Lateral coordinate, metres.
    pub y: f64,
    /// Height above ground (antenna height), metres.
    pub z: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// A road position with the Veins default antenna height (1.895 m).
    pub fn on_road(x: f64, y: f64) -> Self {
        Position { x, y, z: 1.895 }
    }

    /// Euclidean distance to another position, metres.
    pub fn distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Ground (2D) distance to another position, metres.
    pub fn ground_distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance_to(&b), 5.0);
        assert_eq!(a.ground_distance_to(&b), 5.0);
        let c = Position::new(3.0, 4.0, 12.0);
        assert_eq!(a.distance_to(&c), 13.0);
        assert_eq!(a.ground_distance_to(&c), 5.0);
    }

    #[test]
    fn on_road_uses_veins_antenna_height() {
        let p = Position::on_road(10.0, 1.6);
        assert_eq!(p.z, 1.895);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(1.0, 2.0, 3.0);
        let b = Position::new(-4.0, 0.5, 9.0);
        assert_eq!(a.distance_to(&b), b.distance_to(&a));
    }
}
