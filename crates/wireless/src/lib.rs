//! # comfase-wireless — vehicular network simulation (IEEE 802.11p / 1609.4)
//!
//! The Veins substrate of ComFASE-RS: realistic models of the WAVE
//! communication stack (paper Fig. 1) and the analogue wireless channel the
//! attacks are injected into.
//!
//! Layer map (top to bottom, mirroring the paper's Fig. 1):
//!
//! | Paper / Veins component | Module here |
//! |---|---|
//! | WSM application boundary | [`frame`] ([`frame::Wsm`]) |
//! | IEEE 1609.4 upper MAC (channel switching) | [`mac1609`] |
//! | IEEE 802.11p EDCA lower MAC (CSMA/CA) | [`mac`] |
//! | 802.11p OFDM PHY (rates, airtime) | [`phy`] |
//! | SNIR decider (noise + interference) | [`decider`] |
//! | Analogue models (free-space, two-ray) | [`pathloss`] |
//! | Wireless channel & propagation delay | [`channel`] |
//!
//! The **propagation delay** computed in [`channel::Medium`] is Veins'
//! `propagationDelay` simulation parameter — exactly the value ComFASE's
//! delay and DoS attacks overwrite (paper Table I). Attack models plug in
//! via [`channel::ChannelInterceptor`] without touching the protocol
//! models.
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use comfase_des::time::SimTime;
//! use comfase_wireless::channel::Medium;
//! use comfase_wireless::frame::{NodeId, WaveChannel, Wsm};
//! use comfase_wireless::geom::Position;
//!
//! let mut medium = Medium::new();
//! medium.update_position(NodeId(1), Position::on_road(0.0, 0.0));
//! medium.update_position(NodeId(2), Position::on_road(40.0, 0.0));
//! let wsm = Wsm {
//!     source: NodeId(1),
//!     sequence: 0,
//!     created: SimTime::ZERO,
//!     channel: WaveChannel::Cch,
//!     payload: Bytes::from_static(b"beacon"),
//! };
//! let out = medium.transmit(NodeId(1), wsm, SimTime::ZERO);
//! assert_eq!(out.receptions.len(), 1); // node 2 hears it
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod decider;
pub mod frame;
pub mod geom;
pub mod grid;
pub mod mac;
pub mod mac1609;
pub mod pathloss;
pub mod phy;
pub mod units;

pub use channel::{
    ChannelInterceptor, FanoutStrategy, LinkFate, Medium, PlannedReception, TransmitOutcome,
};
pub use frame::{AccessCategory, NodeId, WaveChannel, Wsm};
pub use geom::Position;
pub use grid::NeighborGrid;
pub use mac::{Mac, MacAction, MacConfig};
pub use phy::{Mcs, PhyConfig};
