//! WAVE frames: WSMs at the application/MAC boundary and air frames on the
//! channel.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use comfase_des::time::{SimDuration, SimTime};

use crate::units::Milliwatts;

/// Identifies a radio node (one NIC per vehicle in our scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node.{}", self.0)
    }
}

/// WAVE radio channel (IEEE 1609.4 multi-channel operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WaveChannel {
    /// Control channel 178 — safety beacons (our platooning beacons).
    #[default]
    Cch,
    /// Service channel 176.
    Sch1,
}

/// EDCA access category, highest priority first (IEEE 802.11 / 1609.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessCategory {
    /// Voice — used for safety-critical beacons in Veins examples.
    Vo,
    /// Video.
    Vi,
    /// Best effort.
    Be,
    /// Background.
    Bk,
}

/// A WAVE Short Message as handed between application and MAC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Wsm {
    /// Sending node.
    pub source: NodeId,
    /// Monotonic per-sender sequence number.
    pub sequence: u32,
    /// Creation (application send) time.
    pub created: SimTime,
    /// Radio channel the message must be sent on.
    pub channel: WaveChannel,
    /// Application payload.
    pub payload: Bytes,
}

impl Wsm {
    /// Total over-the-air size in **bits**, including the WSM/MAC/PHY
    /// header overhead used by Veins (we fold it into one constant).
    pub fn size_bits(&self) -> usize {
        const HEADER_BITS: usize = 192; // MAC header + LLC + WSMP header
        HEADER_BITS + self.payload.len() * 8
    }

    /// Serializes the WSM into a buffer (a stand-in for the on-air
    /// encoding; used by tests and by the falsification attack models that
    /// edit payloads in flight).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + self.payload.len());
        buf.put_u32(self.source.0);
        buf.put_u32(self.sequence);
        buf.put_i64(self.created.as_nanos());
        buf.put_u8(match self.channel {
            WaveChannel::Cch => 0,
            WaveChannel::Sch1 => 1,
        });
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes a WSM previously produced by [`Wsm::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation if the buffer is truncated
    /// or contains an invalid channel tag.
    pub fn decode(mut buf: Bytes) -> Result<Wsm, String> {
        if buf.remaining() < 21 {
            return Err(format!("wsm header truncated: {} bytes", buf.remaining()));
        }
        let source = NodeId(buf.get_u32());
        let sequence = buf.get_u32();
        let created = SimTime::from_nanos(buf.get_i64());
        let channel = match buf.get_u8() {
            0 => WaveChannel::Cch,
            1 => WaveChannel::Sch1,
            other => return Err(format!("invalid channel tag {other}")),
        };
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return Err(format!(
                "payload truncated: want {len}, have {}",
                buf.remaining()
            ));
        }
        let payload = buf.copy_to_bytes(len);
        Ok(Wsm {
            source,
            sequence,
            created,
            channel,
            payload,
        })
    }
}

/// A frame in flight on the analogue channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirFrame {
    /// The carried message.
    pub wsm: Wsm,
    /// Transmit power at the sender.
    pub tx_power: Milliwatts,
    /// Time the first bit left the antenna.
    pub tx_start: SimTime,
    /// On-air duration of the frame.
    pub duration: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wsm(payload: &[u8]) -> Wsm {
        Wsm {
            source: NodeId(2),
            sequence: 17,
            created: SimTime::from_millis(1500),
            channel: WaveChannel::Cch,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = wsm(b"beacon-data");
        let decoded = Wsm::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn empty_payload_round_trip() {
        let m = wsm(b"");
        assert_eq!(Wsm::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn size_includes_header_overhead() {
        // The paper uses 200-bit packets; with 1 byte of payload we are at
        // 192 + 8 = 200 bits, matching the experiment configuration.
        let m = wsm(b"x");
        assert_eq!(m.size_bits(), 200);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let m = wsm(b"hello");
        let enc = m.encode();
        let cut = enc.slice(0..10);
        assert!(Wsm::decode(cut).unwrap_err().contains("truncated"));
    }

    #[test]
    fn truncated_payload_rejected() {
        let m = wsm(b"hello");
        let enc = m.encode();
        let cut = enc.slice(0..enc.len() - 2);
        assert!(Wsm::decode(cut).unwrap_err().contains("payload truncated"));
    }

    #[test]
    fn invalid_channel_rejected() {
        let m = wsm(b"");
        let mut raw = BytesMut::from(&m.encode()[..]);
        raw[16] = 9; // channel tag offset: 4 + 4 + 8
        assert!(Wsm::decode(raw.freeze())
            .unwrap_err()
            .contains("invalid channel"));
    }

    #[test]
    fn access_category_priority_order() {
        assert!(AccessCategory::Vo < AccessCategory::Vi);
        assert!(AccessCategory::Vi < AccessCategory::Be);
        assert!(AccessCategory::Be < AccessCategory::Bk);
    }
}
