//! Equivalence properties: the uniform-grid fan-out index must be
//! reception-for-reception identical to the brute-force scan it replaces —
//! same receivers, same powers, same decider results, same counters (up to
//! the grid's own pruning diagnostic) — for every path-loss model,
//! including the stochastic shadowing field.

use bytes::Bytes;
use comfase_des::time::SimTime;
use comfase_wireless::channel::{FanoutStrategy, Medium};
use comfase_wireless::frame::{NodeId, WaveChannel, Wsm};
use comfase_wireless::geom::Position;
use comfase_wireless::pathloss::{
    FreeSpace, LogNormalShadowing, PathLossModel, TwoRayInterference,
};
use comfase_wireless::phy::PhyConfig;
use comfase_wireless::units::CCH_FREQ_HZ;
use proptest::prelude::*;

/// A randomly parameterised path-loss model covering every implementation.
fn any_model() -> impl Strategy<Value = Box<dyn PathLossModel>> {
    prop_oneof![
        (2.0f64..3.5).prop_map(|alpha| Box::new(FreeSpace { alpha }) as Box<dyn PathLossModel>),
        Just(Box::new(TwoRayInterference::default()) as Box<dyn PathLossModel>),
        ((2.0f64..3.0), (1.0f64..8.0), any::<u64>()).prop_map(|(alpha, sigma_db, seed)| {
            Box::new(LogNormalShadowing {
                alpha,
                sigma_db,
                correlation_m: 50.0,
                seed,
            }) as Box<dyn PathLossModel>
        }),
    ]
}

/// Random node positions spread widely enough that, at the larger path-loss
/// exponents, some links fall outside the grid's pruning radius.
fn any_fleet() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(((0.0f64..20_000.0), (0.0f64..100.0)), 2..20)
}

fn beacon(src: u32) -> Wsm {
    Wsm {
        source: NodeId(src),
        sequence: src,
        created: SimTime::ZERO,
        channel: WaveChannel::Cch,
        payload: Bytes::from_static(b"x"),
    }
}

fn medium(model: &dyn PathLossModel, strategy: FanoutStrategy) -> Medium {
    let mut m = Medium::with_models(model.clone_box(), CCH_FREQ_HZ, PhyConfig::default());
    m.set_fanout_strategy(strategy);
    m
}

proptest! {
    /// Every transmission fans out identically under the grid index and
    /// the brute-force scan: the same planned receptions in the same
    /// order, the same decider results, and the same channel counters up
    /// to `links_pruned_by_grid` (the grid's own diagnostic).
    #[test]
    fn grid_fan_out_matches_brute_force(
        fleet in any_fleet(),
        model in any_model(),
    ) {
        let mut grid = medium(model.as_ref(), FanoutStrategy::Grid);
        let mut brute = medium(model.as_ref(), FanoutStrategy::BruteForce);
        for (i, (x, y)) in fleet.iter().enumerate() {
            let pos = Position::on_road(*x, *y);
            grid.update_position(NodeId(i as u32), pos);
            brute.update_position(NodeId(i as u32), pos);
        }

        for i in 0..fleet.len() as u32 {
            let now = SimTime::from_micros(200 * i64::from(i));
            let g = grid.transmit(NodeId(i), beacon(i), now);
            let b = brute.transmit(NodeId(i), beacon(i), now);
            prop_assert_eq!(&g, &b, "fan-out diverged for sender {}", i);
            for r in &g.receptions {
                grid.reception_started(r);
                brute.reception_started(r);
            }
            for r in &g.receptions {
                prop_assert_eq!(
                    grid.reception_finished(r),
                    brute.reception_finished(r),
                    "decision diverged for frame {} at {}", r.frame_id, r.rx
                );
            }
        }

        let mut g_stats = grid.stats();
        prop_assert!(
            grid.grid_cell_size_m().is_some(),
            "every bundled model must invert to a finite pruning radius"
        );
        g_stats.links_pruned_by_grid = 0;
        prop_assert_eq!(g_stats, brute.stats());
    }

    /// Moving and removing nodes keeps the index coherent: after any
    /// sequence of relocations and removals, fan-out still matches.
    #[test]
    fn grid_tracks_moves_and_removals(
        fleet in any_fleet(),
        moves in proptest::collection::vec(
            (any::<prop::sample::Index>(), (0.0f64..20_000.0), (0.0f64..100.0)),
            1..16,
        ),
        removed in any::<prop::sample::Index>(),
        alpha in 2.0f64..3.5,
    ) {
        let model = FreeSpace { alpha };
        let mut grid = medium(&model, FanoutStrategy::Grid);
        let mut brute = medium(&model, FanoutStrategy::BruteForce);
        for (i, (x, y)) in fleet.iter().enumerate() {
            let pos = Position::on_road(*x, *y);
            grid.update_position(NodeId(i as u32), pos);
            brute.update_position(NodeId(i as u32), pos);
        }
        for (who, x, y) in &moves {
            let node = NodeId(who.index(fleet.len()) as u32);
            let pos = Position::on_road(*x, *y);
            grid.update_position(node, pos);
            brute.update_position(node, pos);
        }
        let gone = NodeId(removed.index(fleet.len()) as u32);
        grid.remove_node(gone);
        brute.remove_node(gone);

        for i in 0..fleet.len() as u32 {
            let g = grid.transmit(NodeId(i), beacon(i), SimTime::ZERO);
            let b = brute.transmit(NodeId(i), beacon(i), SimTime::ZERO);
            prop_assert_eq!(g, b, "fan-out diverged for sender {}", i);
        }
    }

    /// A cloned grid medium (the PrefixFork snapshot path) behaves exactly
    /// like its original.
    #[test]
    fn cloned_medium_keeps_its_index(
        fleet in any_fleet(),
        alpha in 2.0f64..3.5,
    ) {
        let model = FreeSpace { alpha };
        let mut original = medium(&model, FanoutStrategy::Grid);
        for (i, (x, y)) in fleet.iter().enumerate() {
            original.update_position(NodeId(i as u32), Position::on_road(*x, *y));
        }
        let mut fork = original.clone();
        for i in 0..fleet.len() as u32 {
            let a = original.transmit(NodeId(i), beacon(i), SimTime::ZERO);
            let b = fork.transmit(NodeId(i), beacon(i), SimTime::ZERO);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(original.stats(), fork.stats());
    }
}
