//! Full-stack wireless integration: MAC + channel + PHY driven by a small
//! event loop, verifying end-to-end delivery timing and CSMA behaviour
//! with exact 802.11p numbers.

use bytes::Bytes;
use comfase_des::rng::RngStream;
use comfase_des::sim::Simulator;
use comfase_des::time::{SimDuration, SimTime};
use comfase_wireless::channel::{Medium, PlannedReception};
use comfase_wireless::frame::{AccessCategory, NodeId, WaveChannel, Wsm};
use comfase_wireless::geom::Position;
use comfase_wireless::mac::{Mac, MacAction, MacConfig};

#[derive(Debug)]
enum Ev {
    MacTimer { node: u32, token: u64 },
    TxEnd { node: u32 },
    RxStart(Box<PlannedReception>),
    RxEnd(Box<PlannedReception>),
}

/// Minimal two+N node radio world for protocol-level assertions.
struct RadioWorld {
    sim: Simulator<Ev>,
    medium: Medium,
    macs: Vec<Mac>,
    delivered: Vec<(u32, Wsm, SimTime)>,
}

impl RadioWorld {
    fn new(positions: &[f64]) -> Self {
        let sim: Simulator<Ev> = Simulator::new(9);
        let mut medium = Medium::new();
        let mut macs = Vec::new();
        for (i, &x) in positions.iter().enumerate() {
            medium.update_position(NodeId(i as u32), Position::on_road(x, 0.0));
            macs.push(Mac::new(
                MacConfig::default(),
                RngStream::new(100 + i as u64),
            ));
        }
        RadioWorld {
            sim,
            medium,
            macs,
            delivered: Vec::new(),
        }
    }

    fn wsm(&self, src: u32, seq: u32) -> Wsm {
        Wsm {
            source: NodeId(src),
            sequence: seq,
            created: self.sim.now(),
            channel: WaveChannel::Cch,
            payload: Bytes::from_static(&[7u8; 36]),
        }
    }

    fn enqueue(&mut self, node: u32, seq: u32) {
        let wsm = self.wsm(node, seq);
        let now = self.sim.now();
        let actions = self.macs[node as usize].enqueue(wsm, AccessCategory::Vo, now);
        self.apply(node, actions);
    }

    fn apply(&mut self, node: u32, actions: Vec<MacAction>) {
        let now = self.sim.now();
        for a in actions {
            match a {
                MacAction::SetTimer { at, token } => {
                    self.sim
                        .schedule_at(at.max(now), Ev::MacTimer { node, token });
                }
                MacAction::StartTx(wsm) => {
                    let out = self.medium.transmit(NodeId(node), wsm, now);
                    self.sim.schedule_at(now + out.duration, Ev::TxEnd { node });
                    for r in out.receptions {
                        self.sim
                            .schedule_at(r.start, Ev::RxStart(Box::new(r.clone())));
                        self.sim.schedule_at(r.end, Ev::RxEnd(Box::new(r)));
                    }
                }
                MacAction::Drop { .. } => {}
            }
        }
    }

    fn run_until(&mut self, limit: SimTime) {
        while let Some((now, ev)) = self.sim.pop_due(limit) {
            match ev {
                Ev::MacTimer { node, token } => {
                    let actions = self.macs[node as usize].handle_timer(token, now);
                    self.apply(node, actions);
                }
                Ev::TxEnd { node } => {
                    let actions = self.macs[node as usize].tx_finished(now);
                    self.apply(node, actions);
                }
                Ev::RxStart(r) => {
                    self.medium.reception_started(&r);
                    if r.above_cs && !self.macs[r.rx.0 as usize].is_transmitting() {
                        let actions = self.macs[r.rx.0 as usize].medium_busy(now);
                        self.apply(r.rx.0, actions);
                    }
                }
                Ev::RxEnd(r) => {
                    let result = self.medium.reception_finished(&r);
                    if result.is_received() {
                        self.delivered.push((r.rx.0, r.wsm.clone(), now));
                    }
                    if !self.medium.is_busy(r.rx, now) {
                        let actions = self.macs[r.rx.0 as usize].medium_idle(now);
                        self.apply(r.rx.0, actions);
                    }
                }
            }
        }
        self.sim.advance_to(limit);
    }
}

#[test]
fn single_frame_timing_is_exact() {
    // Two nodes 30 m apart. Idle medium: AIFS(VO) = 58 us, then the frame
    // (36-byte payload + 192-bit header = 480-bit PSDU at 6 Mbit/s:
    // 16+480+6 = 502 bits -> 11 symbols -> 40 + 88 = 128 us airtime),
    // plus 30 m / c ~ 100 ns propagation.
    let mut w = RadioWorld::new(&[0.0, 30.0]);
    w.enqueue(0, 1);
    w.run_until(SimTime::from_millis(10));
    assert_eq!(w.delivered.len(), 1);
    let (rx, wsm, at) = &w.delivered[0];
    assert_eq!(*rx, 1);
    assert_eq!(wsm.sequence, 1);
    let expect = SimDuration::from_micros(58 + 128) + SimDuration::from_nanos(100);
    assert_eq!(*at, SimTime::ZERO + expect, "delivery at {at}");
}

#[test]
fn broadcast_reaches_every_node() {
    let mut w = RadioWorld::new(&[0.0, 20.0, 40.0, 60.0, 80.0]);
    w.enqueue(2, 9);
    w.run_until(SimTime::from_millis(10));
    let mut receivers: Vec<u32> = w.delivered.iter().map(|(rx, _, _)| *rx).collect();
    receivers.sort_unstable();
    assert_eq!(receivers, vec![0, 1, 3, 4]);
}

#[test]
fn csma_serialises_simultaneous_senders() {
    // Two nodes enqueue at the same instant: both count AIFS down, both
    // transmit... unless carrier sense catches the first transmission.
    // With equal AIFS they collide at the receivers in the middle — but
    // the third node must still decode at least one frame if the MACs
    // separate, or zero if they overlap. What must NOT happen is a panic
    // or a duplicate delivery.
    let mut w = RadioWorld::new(&[0.0, 10.0, 200.0]);
    w.enqueue(0, 1);
    w.enqueue(1, 2);
    w.run_until(SimTime::from_millis(50));
    // Each receiver sees each sequence at most once.
    for rx in 0..3u32 {
        for seq in [1u32, 2] {
            let n = w
                .delivered
                .iter()
                .filter(|(r, wsm, _)| *r == rx && wsm.sequence == seq)
                .count();
            assert!(n <= 1, "node {rx} saw seq {seq} {n} times");
        }
    }
}

#[test]
fn queued_frames_are_paced_by_contention() {
    // One node sends 5 frames back to back: deliveries to the peer must be
    // strictly ordered and separated by at least one frame airtime.
    let mut w = RadioWorld::new(&[0.0, 25.0]);
    for seq in 1..=5 {
        w.enqueue(0, seq);
    }
    w.run_until(SimTime::from_millis(50));
    let times: Vec<SimTime> = w
        .delivered
        .iter()
        .filter(|(rx, _, _)| *rx == 1)
        .map(|(_, _, t)| *t)
        .collect();
    assert_eq!(times.len(), 5);
    for pair in times.windows(2) {
        let gap = pair[1] - pair[0];
        assert!(
            gap >= SimDuration::from_micros(128),
            "frames too close: {gap}"
        );
    }
    // Sequences arrive in order.
    let seqs: Vec<u32> = w
        .delivered
        .iter()
        .filter(|(rx, _, _)| *rx == 1)
        .map(|(_, wsm, _)| wsm.sequence)
        .collect();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
}

#[test]
fn distant_nodes_are_unreachable() {
    let mut w = RadioWorld::new(&[0.0, 50_000.0]);
    w.enqueue(0, 1);
    w.run_until(SimTime::from_millis(10));
    assert!(w.delivered.is_empty());
}
