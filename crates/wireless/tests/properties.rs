//! Property-based tests for the vehicular network substrate.

use bytes::Bytes;
use comfase_des::rng::RngStream;
use comfase_des::time::{SimDuration, SimTime};
use comfase_wireless::decider::{decide, DeciderResult, Interferer};
use comfase_wireless::frame::{AccessCategory, NodeId, WaveChannel, Wsm};
use comfase_wireless::geom::Position;
use comfase_wireless::mac::{Mac, MacAction, MacConfig};
use comfase_wireless::mac1609::ChannelSchedule;
use comfase_wireless::pathloss::{FreeSpace, PathLossModel, TwoRayInterference};
use comfase_wireless::phy::{frame_duration, Mcs, PhyConfig};
use comfase_wireless::units::{Dbm, Milliwatts, CCH_FREQ_HZ};
use proptest::prelude::*;

fn all_mcs() -> impl Strategy<Value = Mcs> {
    prop_oneof![
        Just(Mcs::Bpsk12),
        Just(Mcs::Bpsk34),
        Just(Mcs::Qpsk12),
        Just(Mcs::Qpsk34),
        Just(Mcs::Qam16_12),
        Just(Mcs::Qam16_34),
        Just(Mcs::Qam64_23),
        Just(Mcs::Qam64_34),
    ]
}

proptest! {
    /// dBm ↔ mW conversions round-trip.
    #[test]
    fn power_round_trip(dbm in -150.0f64..50.0) {
        let back = Dbm(dbm).to_milliwatts().to_dbm().0;
        prop_assert!((back - dbm).abs() < 1e-9);
    }

    /// Free-space received power decreases monotonically with distance.
    #[test]
    fn free_space_monotone(d1 in 1.0f64..5_000.0, factor in 1.01f64..10.0) {
        let m = FreeSpace::default();
        let tx = Milliwatts(20.0);
        let a = Position::on_road(0.0, 0.0);
        let p1 = m.received_power(tx, CCH_FREQ_HZ, &a, &Position::on_road(d1, 0.0));
        let p2 = m.received_power(tx, CCH_FREQ_HZ, &a, &Position::on_road(d1 * factor, 0.0));
        prop_assert!(p2.0 < p1.0);
    }

    /// No path loss model ever amplifies the signal.
    #[test]
    fn pathloss_never_gains(d in 0.0f64..10_000.0) {
        let tx = Milliwatts(20.0);
        let a = Position::on_road(0.0, 0.0);
        let b = Position::on_road(d, 0.0);
        for model in [&FreeSpace::default() as &dyn PathLossModel, &TwoRayInterference::default()] {
            let p = model.received_power(tx, CCH_FREQ_HZ, &a, &b);
            prop_assert!(p.0 <= tx.0 + 1e-12, "{} gained at {d} m", model.name());
            prop_assert!(p.0 >= 0.0);
        }
    }

    /// Frame airtime grows with the PSDU and shrinks with the bitrate.
    #[test]
    fn airtime_monotone(bits in 0usize..100_000, extra in 1usize..10_000, mcs in all_mcs()) {
        let d1 = frame_duration(bits, mcs);
        let d2 = frame_duration(bits + extra, mcs);
        prop_assert!(d2 >= d1);
        let fast = frame_duration(bits, Mcs::Qam64_34);
        let slow = frame_duration(bits, Mcs::Bpsk12);
        prop_assert!(fast <= slow);
        // PLCP overhead is always present.
        prop_assert!(d1 >= SimDuration::from_micros(40));
    }

    /// Adding interference can only degrade a reception, never improve it.
    #[test]
    fn interference_is_monotone(
        signal_dbm in -88.0f64..-40.0,
        interferer_dbm in -120.0f64..-40.0,
    ) {
        let cfg = PhyConfig::default();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_micros(100);
        let clean = decide(&cfg, Dbm(signal_dbm).to_milliwatts(), t0, t1, &[]);
        let noisy = decide(
            &cfg,
            Dbm(signal_dbm).to_milliwatts(),
            t0,
            t1,
            &[Interferer { power: Dbm(interferer_dbm).to_milliwatts(), start: t0, end: t1 }],
        );
        if matches!(clean, DeciderResult::Lost(_)) {
            prop_assert!(matches!(noisy, DeciderResult::Lost(_)));
        }
        if let (DeciderResult::Received { snir_db: s_clean }, DeciderResult::Received { snir_db: s_noisy }) =
            (clean, noisy)
        {
            prop_assert!(s_noisy <= s_clean + 1e-9);
        }
    }

    /// WSM encode/decode round-trips arbitrary payloads.
    #[test]
    fn wsm_round_trip(
        src in any::<u32>(),
        seq in any::<u32>(),
        ns in 0i64..1_000_000_000_000,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        sch in any::<bool>(),
    ) {
        let wsm = Wsm {
            source: NodeId(src),
            sequence: seq,
            created: SimTime::from_nanos(ns),
            channel: if sch { WaveChannel::Sch1 } else { WaveChannel::Cch },
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(Wsm::decode(wsm.encode()).unwrap(), wsm);
    }

    /// Truncating an encoded WSM anywhere always fails cleanly.
    #[test]
    fn wsm_truncation_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let wsm = Wsm {
            source: NodeId(1),
            sequence: 2,
            created: SimTime::ZERO,
            channel: WaveChannel::Cch,
            payload: Bytes::from(payload),
        };
        let enc = wsm.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            prop_assert!(Wsm::decode(enc.slice(0..cut)).is_err());
        }
    }

    /// The MAC transmits every queued frame on an idle medium, in FIFO
    /// order per access category, and never loses one.
    #[test]
    fn mac_drains_queue_on_idle_medium(n in 1usize..20, seed in any::<u64>()) {
        let mut mac = Mac::new(MacConfig::default(), RngStream::new(seed));
        let mut pending: Vec<MacAction> = Vec::new();
        for i in 0..n {
            let wsm = Wsm {
                source: NodeId(1),
                sequence: i as u32,
                created: SimTime::ZERO,
                channel: WaveChannel::Cch,
                payload: Bytes::from_static(b"x"),
            };
            pending.extend(mac.enqueue(wsm, AccessCategory::Vo, SimTime::ZERO));
        }
        let mut sent = Vec::new();
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while let Some(action) = pending.pop() {
            guard += 1;
            prop_assert!(guard < 10_000, "MAC did not converge");
            match action {
                MacAction::SetTimer { at, token } => {
                    now = now.max(at);
                    pending.extend(mac.handle_timer(token, at));
                }
                MacAction::StartTx(wsm) => {
                    sent.push(wsm.sequence);
                    now += SimDuration::from_micros(80);
                    pending.extend(mac.tx_finished(now));
                }
                MacAction::Drop { .. } => prop_assert!(false, "unexpected drop"),
            }
        }
        prop_assert_eq!(sent.len(), n);
        let mut sorted = sent.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sent, sorted, "FIFO order violated");
        prop_assert_eq!(mac.stats().sent, n as u64);
    }

    /// next_access always returns an instant where transmission is
    /// permitted for a zero-length frame.
    #[test]
    fn schedule_next_access_is_eligible(ms in 0i64..1_000, switching in any::<bool>()) {
        let s = if switching {
            ChannelSchedule::alternating()
        } else {
            ChannelSchedule::default()
        };
        let now = SimTime::from_millis(ms);
        let at = s.next_access(WaveChannel::Cch, now);
        prop_assert!(at >= now);
        prop_assert!(s.can_transmit(WaveChannel::Cch, at, SimDuration::ZERO));
    }
}
