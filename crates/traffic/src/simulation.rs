//! The microscopic traffic simulation loop.
//!
//! [`TrafficSim`] advances all vehicles in fixed steps (SUMO/Plexe use
//! 0.01 s; so do we by default): commands are computed from a synchronous
//! snapshot of the previous state, dynamics are integrated, collisions are
//! detected and the policy applied, and the trajectory log is updated.

use std::fmt;

use serde::{Deserialize, Serialize};

use comfase_des::rng::RngStream;
use comfase_des::time::{SimDuration, SimTime};

use crate::car_following::{CarFollowingModel, CfInput, Krauss};
use crate::collision::{detect_collisions, Collision, CollisionPolicy};
use crate::dynamics::step_vehicle;
use crate::lane_index::LaneOrder;
use crate::network::Road;
use crate::trace::{TraceConfig, TrafficTrace};
use crate::vehicle::{ControlMode, Vehicle, VehicleId};

/// How [`TrafficSim::leader_of`] finds the vehicle ahead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaderLookup {
    /// Per-lane sorted orderings, maintained incrementally: O(log n) per
    /// query, O(n log n) per step. Falls back to the linear scan whenever
    /// the index is stale (e.g. between external mutations and the next
    /// step).
    #[default]
    Indexed,
    /// Reference implementation: O(n) scan over every vehicle.
    Linear,
}

/// Errors returned by [`TrafficSim`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// A vehicle with this id already exists.
    DuplicateVehicle(VehicleId),
    /// No vehicle with this id exists.
    UnknownVehicle(VehicleId),
    /// Position or lane is not on the road.
    OffRoad {
        /// Offending vehicle.
        vehicle: VehicleId,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::DuplicateVehicle(id) => write!(f, "duplicate vehicle id {id}"),
            TrafficError::UnknownVehicle(id) => write!(f, "unknown vehicle {id}"),
            TrafficError::OffRoad { vehicle, reason } => {
                write!(f, "vehicle {vehicle} off road: {reason}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

/// Deceleration threshold (m/s², as a positive magnitude) above which a
/// braking sample counts as a hard-braking excursion in
/// [`TrafficStats::hard_decel_samples`]. Emergency-braking manoeuvres and
/// fault-induced overreactions exceed it; comfortable service braking
/// (≲ 3 m/s²) does not.
pub const HARD_DECEL_MPS2: f64 = 4.0;

/// Safety-relevant traffic counters, updated on every step.
///
/// Part of deterministic run state: values depend only on the scenario and
/// seed, so forked and from-scratch runs agree exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Simulation steps executed.
    pub steps: u64,
    /// Collision incidents detected (deduplicated per vehicle pair).
    pub collisions: u64,
    /// Vehicle·step samples with deceleration stronger than
    /// [`HARD_DECEL_MPS2`].
    pub hard_decel_samples: u64,
}

/// A microscopic traffic simulation on one road.
///
/// `TrafficSim` is `Clone`: a clone is a full snapshot (vehicles, RNG state,
/// trace, collision bookkeeping), so a clone stepped forward produces exactly
/// the same states the original would have.
#[derive(Debug, Clone)]
pub struct TrafficSim {
    /// Immutable after setup; forks share it by reference instead of
    /// copying lane geometry.
    road: std::sync::Arc<Road>,
    vehicles: Vec<Vehicle>,
    /// Immutable model parameters (`accel` is `&self`), shared by forks.
    cf_model: std::sync::Arc<dyn CarFollowingModel>,
    policy: CollisionPolicy,
    step_len: SimDuration,
    step_len_s: f64,
    time: SimTime,
    steps: u64,
    trace: TrafficTrace,
    trace_cfg: TraceConfig,
    rng: RngStream,
    reported_pairs: Vec<(VehicleId, VehicleId)>,
    stats: TrafficStats,
    numeric_fault: Option<String>,
    lookup: LeaderLookup,
    lane_index: LaneOrder,
}

impl TrafficSim {
    /// Creates a simulation with the SUMO-like defaults: 0.01 s steps,
    /// Krauss car-following, `RemoveCollider` collision policy.
    pub fn new(road: Road, rng: RngStream) -> Self {
        TrafficSim {
            road: std::sync::Arc::new(road),
            vehicles: Vec::new(),
            cf_model: std::sync::Arc::new(Krauss::default()),
            policy: CollisionPolicy::default(),
            step_len: SimDuration::from_millis(10),
            step_len_s: 0.01,
            time: SimTime::ZERO,
            steps: 0,
            trace: TrafficTrace::new(),
            trace_cfg: TraceConfig::default(),
            rng,
            reported_pairs: Vec::new(),
            stats: TrafficStats::default(),
            numeric_fault: None,
            lookup: LeaderLookup::default(),
            lane_index: LaneOrder::default(),
        }
    }

    /// Selects how `leader_of` finds the vehicle ahead.
    pub fn set_leader_lookup(&mut self, lookup: LeaderLookup) {
        self.lookup = lookup;
    }

    /// The active leader-lookup strategy.
    pub fn leader_lookup(&self) -> LeaderLookup {
        self.lookup
    }

    /// Full lane-index rebuilds performed so far (structural
    /// invalidations; per-step position refreshes are not counted).
    pub fn index_rebuilds(&self) -> u64 {
        self.lane_index.rebuilds()
    }

    /// Forces the lane index up to date (no-op under
    /// [`LeaderLookup::Linear`]). `step` does this implicitly; call it to
    /// make out-of-step `leader_of` queries use the index.
    pub fn rebuild_lane_index(&mut self) {
        if self.lookup == LeaderLookup::Indexed {
            self.lane_index
                .rebuild(self.road.nr_lanes(), &self.vehicles);
        }
    }

    fn refresh_lane_index(&mut self) {
        if self.lookup != LeaderLookup::Indexed {
            return;
        }
        if self.lane_index.structure_dirty() {
            self.lane_index
                .rebuild(self.road.nr_lanes(), &self.vehicles);
        } else if !self.lane_index.positions_current() {
            self.lane_index.refresh_positions(&self.vehicles);
        }
    }

    /// Replaces the car-following model used for `CarFollowing` vehicles.
    pub fn set_car_following_model(&mut self, model: Box<dyn CarFollowingModel>) {
        self.cf_model = model.into();
    }

    /// Sets the collision handling policy.
    pub fn set_collision_policy(&mut self, policy: CollisionPolicy) {
        self.policy = policy;
    }

    /// Sets the step length.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn set_step_len(&mut self, step: SimDuration) {
        assert!(step > SimDuration::ZERO, "step length must be positive");
        self.step_len = step;
        self.step_len_s = step.as_secs_f64();
    }

    /// Sets trajectory log decimation.
    pub fn set_trace_config(&mut self, cfg: TraceConfig) {
        self.trace_cfg = cfg;
    }

    /// Pre-sizes per-vehicle trace buffers for runs of known length
    /// (`samples` ≈ planned steps / `sample_every`), avoiding repeated
    /// reallocation in the per-step logging hot path.
    pub fn reserve_trace_capacity(&mut self, samples: usize) {
        self.trace.set_capacity_hint(samples);
    }

    /// The road being simulated.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Configured step length.
    pub fn step_len(&self) -> SimDuration {
        self.step_len
    }

    /// Inserts a vehicle.
    ///
    /// # Errors
    ///
    /// Fails if the id already exists or the vehicle is off the road.
    pub fn add_vehicle(&mut self, vehicle: Vehicle) -> Result<(), TrafficError> {
        if self.vehicles.iter().any(|v| v.id == vehicle.id) {
            return Err(TrafficError::DuplicateVehicle(vehicle.id));
        }
        if vehicle.state.lane.0 >= self.road.nr_lanes() {
            return Err(TrafficError::OffRoad {
                vehicle: vehicle.id,
                reason: format!(
                    "lane {} out of range (road has {})",
                    vehicle.state.lane.0,
                    self.road.nr_lanes()
                ),
            });
        }
        if !self.road.contains(vehicle.state.pos_m) {
            return Err(TrafficError::OffRoad {
                vehicle: vehicle.id,
                reason: format!(
                    "position {} outside [0, {}]",
                    vehicle.state.pos_m, self.road.length_m
                ),
            });
        }
        self.vehicles.push(vehicle);
        self.lane_index.mark_structure_dirty();
        Ok(())
    }

    /// All vehicles (including inactive ones).
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Looks up a vehicle by id.
    pub fn vehicle(&self, id: VehicleId) -> Option<&Vehicle> {
        self.vehicles.iter().find(|v| v.id == id)
    }

    /// Looks up a vehicle mutably by id.
    ///
    /// Conservatively invalidates the lane index: the caller may change
    /// anything, including position, lane, or the active flag, so the next
    /// step performs a full (counted) rebuild.
    pub fn vehicle_mut(&mut self, id: VehicleId) -> Option<&mut Vehicle> {
        self.lane_index.mark_structure_dirty();
        self.vehicles.iter_mut().find(|v| v.id == id)
    }

    /// Mutable lookup for control-state changes that cannot affect the
    /// lane ordering (commanded acceleration, control mode).
    fn vehicle_mut_untracked(&mut self, id: VehicleId) -> Option<&mut Vehicle> {
        self.vehicles.iter_mut().find(|v| v.id == id)
    }

    /// Switches a vehicle to external acceleration control (TraCI-style).
    ///
    /// # Errors
    ///
    /// Fails if the vehicle does not exist.
    pub fn set_external_control(&mut self, id: VehicleId) -> Result<(), TrafficError> {
        self.vehicle_mut_untracked(id)
            .ok_or(TrafficError::UnknownVehicle(id))?
            .set_external_control();
        Ok(())
    }

    /// Sets the commanded acceleration of an externally controlled vehicle.
    ///
    /// # Errors
    ///
    /// Fails if the vehicle does not exist.
    pub fn command_accel(&mut self, id: VehicleId, accel_mps2: f64) -> Result<(), TrafficError> {
        self.vehicle_mut_untracked(id)
            .ok_or(TrafficError::UnknownVehicle(id))?
            .command_accel(accel_mps2);
        Ok(())
    }

    /// `true` if `a` is ahead of `b` in the deterministic `(pos_m,
    /// VehicleId)` lane order. Equal positions tie-break by id, so a
    /// co-located vehicle is still someone's leader instead of being
    /// invisible to car-following; `total_cmp` keeps even NaN-poisoned
    /// positions (caught by the numeric guard) deterministically ordered.
    fn ahead_of(a: &Vehicle, b: &Vehicle) -> bool {
        a.state
            .pos_m
            .total_cmp(&b.state.pos_m)
            .then(a.id.cmp(&b.id))
            .is_gt()
    }

    /// The active vehicle directly ahead of `id` on the same lane, with the
    /// bumper-to-bumper gap (negative if the two overlap).
    ///
    /// "Directly ahead" means nearest in the `(pos_m, VehicleId)` lane
    /// order, so vehicles at exactly equal positions see each other
    /// (tie-break by id) instead of interpenetrating without a gap ever
    /// being computed.
    ///
    /// Uses the lane index when it is current, else the linear scan; both
    /// return identical results.
    ///
    /// # Errors
    ///
    /// Fails if the vehicle does not exist.
    pub fn leader_of(&self, id: VehicleId) -> Result<Option<(VehicleId, f64)>, TrafficError> {
        if self.lookup == LeaderLookup::Indexed && self.lane_index.is_usable() {
            let me = self.vehicle(id).ok_or(TrafficError::UnknownVehicle(id))?;
            let Some(entry) =
                self.lane_index
                    .leader_in_lane(me.state.lane.0, me.state.pos_m, me.id)
            else {
                return Ok(None);
            };
            let leader = &self.vehicles[entry.slot];
            return Ok(Some((leader.id, me.gap_to(leader))));
        }
        self.leader_of_linear(id)
    }

    /// Reference implementation of [`TrafficSim::leader_of`]: an O(n) scan
    /// over every vehicle. Kept public for the equivalence proptests and
    /// as the fallback while the lane index is stale.
    ///
    /// # Errors
    ///
    /// Fails if the vehicle does not exist.
    pub fn leader_of_linear(
        &self,
        id: VehicleId,
    ) -> Result<Option<(VehicleId, f64)>, TrafficError> {
        let me = self.vehicle(id).ok_or(TrafficError::UnknownVehicle(id))?;
        let mut best: Option<&Vehicle> = None;
        for v in self.vehicles.iter().filter(|v| v.active && v.id != id) {
            if v.state.lane != me.state.lane || !Self::ahead_of(v, me) {
                continue;
            }
            if best.is_none_or(|b| Self::ahead_of(b, v)) {
                best = Some(v);
            }
        }
        Ok(best.map(|v| (v.id, me.gap_to(v))))
    }

    /// Advances the simulation by one step.
    ///
    /// Returns the collisions that occurred during this step (also recorded
    /// in the trace).
    pub fn step(&mut self) -> Vec<Collision> {
        // Bring the lane index up to date with any between-step mutations
        // (vehicles added, externally mutated) before Phase 1 queries it.
        self.refresh_lane_index();

        // Phase 1: compute car-following commands from a synchronous snapshot.
        let mut commands: Vec<(usize, f64)> = Vec::new();
        for i in 0..self.vehicles.len() {
            let v = &self.vehicles[i];
            if !v.active || v.control_mode != ControlMode::CarFollowing {
                continue;
            }
            let leader = self
                .leader_of(v.id)
                .expect("vehicle exists")
                .map(|(lid, gap)| (self.vehicle(lid).expect("leader exists"), gap));
            let v = &self.vehicles[i];
            let input = CfInput {
                speed_mps: v.state.speed_mps,
                gap_m: leader.as_ref().map(|(_, g)| *g),
                leader_speed_mps: leader.as_ref().map_or(0.0, |(l, _)| l.state.speed_mps),
                speed_limit_mps: self
                    .road
                    .speed_limit(v.state.lane)
                    .min(v.spec.max_speed_mps),
                max_accel_mps2: v.spec.max_accel_mps2,
                service_decel_mps2: v.spec.max_decel_mps2.min(4.5),
                dt_s: self.step_len_s,
                noise: self.rng.uniform(),
            };
            commands.push((i, self.cf_model.accel(&input)));
        }
        for (i, a) in commands {
            self.vehicles[i].command_accel(a);
        }

        // Phase 2: integrate dynamics.
        for v in self.vehicles.iter_mut().filter(|v| v.active) {
            let out = step_vehicle(v, self.step_len_s);
            // Numeric guard (active in release builds): NaN propagates
            // through the clamp chain, so any non-finite command or state
            // surfaces here. First fault wins; later steps keep the original
            // diagnosis so the report is deterministic.
            if self.numeric_fault.is_none() && (!out.is_finite() || !v.state.pos_m.is_finite()) {
                self.numeric_fault = Some(format!(
                    "vehicle {} kinematics non-finite at step {}: accel {}, speed {}, pos {}",
                    v.id,
                    self.steps + 1,
                    v.state.accel_mps2,
                    v.state.speed_mps,
                    v.state.pos_m
                ));
            }
            if v.state.accel_mps2 <= -HARD_DECEL_MPS2 {
                self.stats.hard_decel_samples += 1;
            }
        }
        self.lane_index.invalidate_positions();
        self.time += self.step_len;
        self.steps += 1;
        self.stats.steps += 1;

        // Phase 3: collisions.
        let mut collisions = detect_collisions(self.time, &self.vehicles);
        collisions.retain(|c| {
            // Unordered pair: with `RegisterOnly` a vehicle may pass through
            // another, which must not count as a second incident.
            let pair = (c.collider.min(c.victim), c.collider.max(c.victim));
            if self.reported_pairs.contains(&pair) {
                false
            } else {
                self.reported_pairs.push(pair);
                true
            }
        });
        for c in &collisions {
            match self.policy {
                CollisionPolicy::RemoveCollider => {
                    if let Some(v) = self.vehicle_mut(c.collider) {
                        v.active = false;
                    }
                }
                CollisionPolicy::StopBoth => {
                    for id in [c.collider, c.victim] {
                        if let Some(v) = self.vehicle_mut(id) {
                            v.state.speed_mps = 0.0;
                            v.state.accel_mps2 = 0.0;
                            v.command_accel(0.0);
                        }
                    }
                }
                CollisionPolicy::RegisterOnly => {}
            }
        }
        self.stats.collisions += collisions.len() as u64;
        self.trace.record_collisions(&collisions);

        // Phase 4: trajectory log.
        if self
            .steps
            .is_multiple_of(u64::from(self.trace_cfg.sample_every))
        {
            self.trace.record_step(self.time, &self.vehicles);
        }

        // End-of-step refresh so `leader_of` queries made between steps
        // (the world's per-step radar pass runs before the next traffic
        // step) are answered from the index, not the linear fallback.
        self.refresh_lane_index();
        collisions
    }

    /// Runs `n` steps; returns the total number of collisions seen.
    pub fn run_steps(&mut self, n: u64) -> usize {
        let mut total = 0;
        for _ in 0..n {
            total += self.step().len();
        }
        total
    }

    /// Safety-relevant counters accumulated so far.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// The first numeric divergence detected by the release-mode kinematics
    /// guard, if any (a human-readable diagnosis; the run should be treated
    /// as failed with `FailureKind::NumericDiverged`).
    pub fn numeric_fault(&self) -> Option<&str> {
        self.numeric_fault.as_deref()
    }

    /// The trajectory log so far.
    pub fn trace(&self) -> &TrafficTrace {
        &self.trace
    }

    /// Consumes the simulation and returns the trajectory log.
    pub fn into_trace(self) -> TrafficTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LaneIndex;
    use crate::vehicle::VehicleSpec;

    fn sim() -> TrafficSim {
        TrafficSim::new(Road::paper_highway(), RngStream::new(1))
    }

    fn car(id: u32, pos: f64, speed: f64) -> Vehicle {
        Vehicle::new(
            VehicleId(id),
            VehicleSpec::default_car(),
            pos,
            LaneIndex(0),
            speed,
        )
    }

    #[test]
    fn add_and_query_vehicles() {
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 20.0)).unwrap();
        s.add_vehicle(car(2, 50.0, 20.0)).unwrap();
        assert_eq!(s.vehicles().len(), 2);
        assert!(s.vehicle(VehicleId(1)).is_some());
        assert_eq!(s.leader_of(VehicleId(2)).unwrap().unwrap().0, VehicleId(1));
        // gap = 100 - 5 (leader length) - 50 = 45
        assert!((s.leader_of(VehicleId(2)).unwrap().unwrap().1 - 45.0).abs() < 1e-12);
        assert!(s.leader_of(VehicleId(1)).unwrap().is_none());
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 20.0)).unwrap();
        assert_eq!(
            s.add_vehicle(car(1, 50.0, 20.0)),
            Err(TrafficError::DuplicateVehicle(VehicleId(1)))
        );
    }

    #[test]
    fn off_road_rejected() {
        let mut s = sim();
        assert!(matches!(
            s.add_vehicle(car(1, 10_000.0, 20.0)),
            Err(TrafficError::OffRoad { .. })
        ));
        let mut v = car(2, 100.0, 20.0);
        v.state.lane = LaneIndex(9);
        assert!(matches!(
            s.add_vehicle(v),
            Err(TrafficError::OffRoad { .. })
        ));
    }

    #[test]
    fn unknown_vehicle_errors() {
        let mut s = sim();
        assert_eq!(
            s.command_accel(VehicleId(9), 1.0),
            Err(TrafficError::UnknownVehicle(VehicleId(9)))
        );
        assert!(s.set_external_control(VehicleId(9)).is_err());
        assert!(s.leader_of(VehicleId(9)).is_err());
    }

    #[test]
    fn time_advances_per_step() {
        let mut s = sim();
        s.run_steps(100);
        assert_eq!(s.time(), SimTime::from_secs(1));
    }

    #[test]
    fn free_vehicle_accelerates_to_its_max_speed() {
        let mut s = sim();
        s.add_vehicle(car(1, 0.0, 0.0)).unwrap();
        s.run_steps(6000); // 60 s
        let v = s.vehicle(VehicleId(1)).unwrap();
        assert!(
            (v.state.speed_mps - v.spec.max_speed_mps).abs() < 0.1,
            "speed {}",
            v.state.speed_mps
        );
    }

    #[test]
    fn krauss_follower_keeps_safe_distance() {
        let mut s = sim();
        s.add_vehicle(car(1, 120.0, 20.0)).unwrap();
        s.add_vehicle(car(2, 100.0, 25.0)).unwrap();
        s.run_steps(3000);
        assert!(s.trace().collisions.is_empty());
        let (_, gap) = s.leader_of(VehicleId(2)).unwrap().unwrap();
        assert!(gap > 0.0);
    }

    #[test]
    fn external_control_bypasses_car_following() {
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 20.0)).unwrap();
        s.set_external_control(VehicleId(1)).unwrap();
        s.command_accel(VehicleId(1), -4.0).unwrap();
        s.run_steps(100); // 1 s at -4 m/s^2
        let v = s.vehicle(VehicleId(1)).unwrap();
        assert!(
            (v.state.speed_mps - 16.0).abs() < 0.01,
            "speed {}",
            v.state.speed_mps
        );
    }

    #[test]
    fn forced_collision_is_detected_and_collider_removed() {
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 5.0)).unwrap();
        s.add_vehicle(car(2, 90.0, 30.0)).unwrap();
        s.set_external_control(VehicleId(1)).unwrap();
        s.set_external_control(VehicleId(2)).unwrap();
        s.command_accel(VehicleId(2), 0.0).unwrap(); // keeps ramming speed
        let collisions = {
            let mut all = Vec::new();
            for _ in 0..200 {
                all.extend(s.step());
            }
            all
        };
        assert_eq!(collisions.len(), 1);
        assert_eq!(collisions[0].collider, VehicleId(2));
        assert_eq!(collisions[0].victim, VehicleId(1));
        assert!(!s.vehicle(VehicleId(2)).unwrap().active, "collider removed");
        assert!(s.vehicle(VehicleId(1)).unwrap().active);
        assert!(s.trace().has_collision());
    }

    #[test]
    fn stop_both_policy_freezes_vehicles() {
        let mut s = sim();
        s.set_collision_policy(CollisionPolicy::StopBoth);
        s.add_vehicle(car(1, 100.0, 5.0)).unwrap();
        s.add_vehicle(car(2, 90.0, 30.0)).unwrap();
        s.set_external_control(VehicleId(1)).unwrap();
        s.set_external_control(VehicleId(2)).unwrap();
        for _ in 0..200 {
            s.step();
        }
        assert_eq!(s.vehicle(VehicleId(2)).unwrap().state.speed_mps, 0.0);
        assert!(s.vehicle(VehicleId(2)).unwrap().active);
    }

    #[test]
    fn register_only_reports_pair_once() {
        let mut s = sim();
        s.set_collision_policy(CollisionPolicy::RegisterOnly);
        s.add_vehicle(car(1, 100.0, 0.0)).unwrap();
        s.add_vehicle(car(2, 94.0, 30.0)).unwrap();
        s.set_external_control(VehicleId(1)).unwrap();
        s.set_external_control(VehicleId(2)).unwrap();
        for _ in 0..300 {
            s.step();
        }
        assert_eq!(s.trace().collisions.len(), 1, "same pair reported once");
    }

    #[test]
    fn trace_decimation() {
        let mut s = sim();
        s.set_trace_config(TraceConfig { sample_every: 10 });
        s.add_vehicle(car(1, 0.0, 10.0)).unwrap();
        s.run_steps(100);
        let tr = s.trace().vehicle(VehicleId(1)).unwrap();
        assert_eq!(tr.speed.len(), 10);
    }

    #[test]
    fn stats_count_steps_collisions_and_hard_braking() {
        let mut s = sim();
        assert_eq!(s.stats(), TrafficStats::default());
        // A stopped leader forces the follower into an emergency stop and
        // eventually a collision (follower under external control keeps speed).
        s.add_vehicle(car(1, 100.0, 5.0)).unwrap();
        s.add_vehicle(car(2, 90.0, 30.0)).unwrap();
        s.set_external_control(VehicleId(1)).unwrap();
        s.set_external_control(VehicleId(2)).unwrap();
        s.command_accel(VehicleId(1), -5.0).unwrap();
        s.command_accel(VehicleId(2), 0.0).unwrap();
        s.run_steps(200);
        let st = s.stats();
        assert_eq!(st.steps, 200);
        assert_eq!(st.collisions, 1);
        assert!(
            st.hard_decel_samples > 0,
            "commanded -5 m/s² must register as hard braking"
        );
    }

    #[test]
    fn nan_command_is_caught_by_the_numeric_guard() {
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 20.0)).unwrap();
        assert_eq!(s.numeric_fault(), None);
        s.set_external_control(VehicleId(1)).unwrap();
        s.command_accel(VehicleId(1), f64::NAN).unwrap();
        s.step();
        let fault = s.numeric_fault().expect("NaN command must be detected");
        assert!(fault.contains("non-finite"), "{fault}");
        // First fault wins: further steps keep the original diagnosis.
        let first = fault.to_string();
        s.step();
        assert_eq!(s.numeric_fault(), Some(first.as_str()));
    }

    #[test]
    fn co_located_vehicle_is_visible_as_leader() {
        // Regression: `leader_of` used to skip vehicles at exactly equal
        // `pos_m`, so a co-located pair interpenetrated without a gap ever
        // being computed. Ties now break deterministically by id.
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 20.0)).unwrap();
        s.add_vehicle(car(2, 100.0, 20.0)).unwrap();
        let (leader, gap) = s
            .leader_of(VehicleId(1))
            .unwrap()
            .expect("tie must be visible");
        assert_eq!(leader, VehicleId(2));
        // Same position: the leader's rear bumper is one car length behind
        // my front bumper.
        assert!((gap - (-5.0)).abs() < 1e-12, "gap {gap}");
        assert_eq!(s.leader_of(VehicleId(2)).unwrap(), None, "highest id leads");
        // The indexed path agrees with the linear fallback.
        s.rebuild_lane_index();
        assert_eq!(
            s.leader_of(VehicleId(1)).unwrap(),
            Some((VehicleId(2), gap))
        );
        assert_eq!(
            s.leader_of_linear(VehicleId(1)).unwrap(),
            Some((VehicleId(2), gap))
        );
        assert_eq!(s.leader_of(VehicleId(2)).unwrap(), None);
    }

    #[test]
    fn indexed_and_linear_lookup_agree_during_a_run() {
        let build = |lookup: LeaderLookup| {
            let mut s = sim();
            s.set_leader_lookup(lookup);
            for i in 0..20 {
                s.add_vehicle(car(i, 30.0 * f64::from(i), 20.0 + f64::from(i % 5)))
                    .unwrap();
            }
            s
        };
        let mut indexed = build(LeaderLookup::Indexed);
        let mut linear = build(LeaderLookup::Linear);
        for _ in 0..50 {
            indexed.run_steps(10);
            linear.run_steps(10);
            for i in 0..20 {
                let id = VehicleId(i);
                assert_eq!(indexed.leader_of(id), linear.leader_of(id), "vehicle {i}");
                assert_eq!(indexed.leader_of(id), indexed.leader_of_linear(id));
            }
        }
        assert_eq!(
            indexed.vehicle(VehicleId(7)).unwrap().state.pos_m,
            linear.vehicle(VehicleId(7)).unwrap().state.pos_m,
            "whole-run trajectories must be identical across lookups"
        );
        assert!(indexed.index_rebuilds() >= 1);
    }

    #[test]
    fn index_rebuilds_only_on_structural_change() {
        let mut s = sim();
        s.add_vehicle(car(1, 100.0, 20.0)).unwrap();
        s.add_vehicle(car(2, 50.0, 20.0)).unwrap();
        s.run_steps(100);
        let after_warmup = s.index_rebuilds();
        s.run_steps(100);
        assert_eq!(
            s.index_rebuilds(),
            after_warmup,
            "steady-state steps refresh positions without rebuilding"
        );
        s.vehicle_mut(VehicleId(1)).unwrap().state.pos_m += 1.0;
        s.run_steps(1);
        assert_eq!(
            s.index_rebuilds(),
            after_warmup + 1,
            "external mutation rebuilds"
        );
    }

    #[test]
    fn deterministic_given_equal_seeds() {
        let run = |seed: u64| {
            let mut s = TrafficSim::new(Road::paper_highway(), RngStream::new(seed));
            s.set_car_following_model(Box::new(Krauss {
                sigma: 0.5,
                ..Krauss::default()
            }));
            s.add_vehicle(car(1, 200.0, 20.0)).unwrap();
            s.add_vehicle(car(2, 150.0, 25.0)).unwrap();
            s.run_steps(2000);
            (
                s.vehicle(VehicleId(1)).unwrap().state.pos_m,
                s.vehicle(VehicleId(2)).unwrap().state.pos_m,
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
