//! Collision detection and incident records.
//!
//! Follows SUMO's collision semantics (the paper cites SUMO's collision
//! output for its collider analysis): a rear-end collision occurs when a
//! follower's front bumper reaches the leader's rear bumper on the same
//! lane; the **rear vehicle is the collider**, the front one the victim.

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

use crate::network::LaneIndex;
use crate::vehicle::{Vehicle, VehicleId};

/// One collision incident, in the spirit of SUMO's collision output file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Collision {
    /// Simulation time of the incident.
    pub time: SimTime,
    /// The vehicle responsible (rear vehicle in a rear-end collision).
    pub collider: VehicleId,
    /// The vehicle hit.
    pub victim: VehicleId,
    /// Lane where the collision happened.
    pub lane: LaneIndex,
    /// Front-bumper position of the collider, metres.
    pub pos_m: f64,
    /// Collider speed at impact, m/s.
    pub collider_speed_mps: f64,
    /// Victim speed at impact, m/s.
    pub victim_speed_mps: f64,
    /// Bumper overlap at detection time, metres (>= 0).
    pub overlap_m: f64,
}

/// What the simulation does with the collider after an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CollisionPolicy {
    /// Record the incident and deactivate (remove) the collider — SUMO's
    /// default "teleport" behaviour. The platoon behind keeps driving.
    #[default]
    RemoveCollider,
    /// Record the incident and stop both vehicles in place.
    StopBoth,
    /// Record the incident only; vehicles continue (may overlap). Useful
    /// for analysis runs that want every subsequent incident too.
    RegisterOnly,
}

/// Scans vehicles (any order) and returns all new rear-end collisions.
///
/// Only active vehicles are considered. At most one collision is reported
/// per (collider, victim) pair per call; the caller deactivates or stops
/// vehicles according to policy, which prevents duplicate reports on
/// subsequent steps for `RemoveCollider`/`StopBoth`.
pub fn detect_collisions(time: SimTime, vehicles: &[Vehicle]) -> Vec<Collision> {
    // Sort indices per lane by front position, rear to front.
    let mut idx: Vec<usize> = (0..vehicles.len())
        .filter(|&i| vehicles[i].active)
        .collect();
    idx.sort_by(|&a, &b| {
        let va = &vehicles[a];
        let vb = &vehicles[b];
        // total_cmp: deterministic total order even if a position ever goes
        // NaN (a panic here would differ between fork and scratch runs).
        va.state
            .lane
            .cmp(&vb.state.lane)
            .then(va.state.pos_m.total_cmp(&vb.state.pos_m))
    });
    let mut out = Vec::new();
    for pair in idx.windows(2) {
        let follower = &vehicles[pair[0]];
        let leader = &vehicles[pair[1]];
        if follower.state.lane != leader.state.lane {
            continue;
        }
        let gap = follower.gap_to(leader);
        if gap < 0.0 {
            out.push(Collision {
                time,
                collider: follower.id,
                victim: leader.id,
                lane: follower.state.lane,
                pos_m: follower.state.pos_m,
                collider_speed_mps: follower.state.speed_mps,
                victim_speed_mps: leader.state.speed_mps,
                overlap_m: -gap,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::VehicleSpec;

    fn veh(id: u32, pos: f64, lane: u8, speed: f64) -> Vehicle {
        Vehicle::new(
            VehicleId(id),
            VehicleSpec::paper_platooning_car(),
            pos,
            LaneIndex(lane),
            speed,
        )
    }

    #[test]
    fn no_collision_with_positive_gaps() {
        let vehicles = vec![veh(1, 100.0, 0, 20.0), veh(2, 90.0, 0, 20.0)];
        assert!(detect_collisions(SimTime::ZERO, &vehicles).is_empty());
    }

    #[test]
    fn rear_vehicle_is_collider() {
        // leader front 100, rear 96; follower front 97 -> overlap 1 m.
        let vehicles = vec![veh(1, 100.0, 0, 18.0), veh(2, 97.0, 0, 22.0)];
        let cs = detect_collisions(SimTime::from_secs(3), &vehicles);
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.collider, VehicleId(2));
        assert_eq!(c.victim, VehicleId(1));
        assert!((c.overlap_m - 1.0).abs() < 1e-12);
        assert_eq!(c.collider_speed_mps, 22.0);
        assert_eq!(c.victim_speed_mps, 18.0);
        assert_eq!(c.time, SimTime::from_secs(3));
    }

    #[test]
    fn different_lanes_do_not_collide() {
        let vehicles = vec![veh(1, 100.0, 0, 20.0), veh(2, 99.0, 1, 20.0)];
        assert!(detect_collisions(SimTime::ZERO, &vehicles).is_empty());
    }

    #[test]
    fn inactive_vehicles_ignored() {
        let mut vehicles = vec![veh(1, 100.0, 0, 20.0), veh(2, 98.0, 0, 20.0)];
        vehicles[0].active = false;
        assert!(detect_collisions(SimTime::ZERO, &vehicles).is_empty());
    }

    #[test]
    fn chain_collision_reports_each_adjacent_pair() {
        // Three vehicles all overlapping.
        let vehicles = vec![
            veh(1, 100.0, 0, 10.0),
            veh(2, 98.0, 0, 15.0),
            veh(3, 96.0, 0, 20.0),
        ];
        let cs = detect_collisions(SimTime::ZERO, &vehicles);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].collider, VehicleId(3));
        assert_eq!(cs[0].victim, VehicleId(2));
        assert_eq!(cs[1].collider, VehicleId(2));
        assert_eq!(cs[1].victim, VehicleId(1));
    }

    #[test]
    fn exact_touch_is_not_a_collision() {
        // gap exactly 0: follower front == leader rear.
        let vehicles = vec![veh(1, 100.0, 0, 20.0), veh(2, 96.0, 0, 20.0)];
        assert!(detect_collisions(SimTime::ZERO, &vehicles).is_empty());
    }
}
