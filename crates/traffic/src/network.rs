//! Road network model.
//!
//! The paper's scenario runs on a single straight multi-lane road (4 lanes,
//! 9400 m, 3.2 m lane width, 90 m/s speed limit). The network model here is a
//! list of [`Road`]s each with per-lane attributes, which covers that
//! scenario and simple extensions (on-ramp hazards, heterogeneous limits)
//! without pretending to be a full map format.

use serde::{Deserialize, Serialize};

/// Index of a lane on a road, `0` = rightmost lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LaneIndex(pub u8);

/// Attributes of one lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lane {
    /// Lane width in metres.
    pub width_m: f64,
    /// Maximum permitted speed on this lane, in m/s.
    pub speed_limit_mps: f64,
}

/// A straight, one-directional road segment with parallel lanes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Human-readable identifier (e.g. `"highway"`).
    pub id: String,
    /// Drivable length in metres; positions run from `0` to `length_m`.
    pub length_m: f64,
    /// Lane list, index 0 = rightmost.
    pub lanes: Vec<Lane>,
}

impl Road {
    /// Creates a road where all lanes share the same width and speed limit.
    ///
    /// # Panics
    ///
    /// Panics if `length_m <= 0`, `nr_lanes == 0`, `width_m <= 0` or
    /// `speed_limit_mps <= 0`.
    pub fn uniform(
        id: impl Into<String>,
        length_m: f64,
        nr_lanes: u8,
        width_m: f64,
        speed_limit_mps: f64,
    ) -> Self {
        assert!(length_m > 0.0, "road length must be positive");
        assert!(nr_lanes > 0, "road needs at least one lane");
        assert!(width_m > 0.0, "lane width must be positive");
        assert!(speed_limit_mps > 0.0, "speed limit must be positive");
        Road {
            id: id.into(),
            length_m,
            lanes: vec![
                Lane {
                    width_m,
                    speed_limit_mps
                };
                nr_lanes as usize
            ],
        }
    }

    /// The scenario road used in the paper's experiments (§IV-A.1):
    /// 4 lanes, 9400 m long, 3.2 m per lane, 90 m/s speed limit.
    pub fn paper_highway() -> Self {
        Road::uniform("highway", 9400.0, 4, 3.2, 90.0)
    }

    /// Number of lanes.
    pub fn nr_lanes(&self) -> u8 {
        self.lanes.len() as u8
    }

    /// Lane attributes, if the index is valid.
    pub fn lane(&self, idx: LaneIndex) -> Option<&Lane> {
        self.lanes.get(idx.0 as usize)
    }

    /// Speed limit of a lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane index is out of range.
    pub fn speed_limit(&self, idx: LaneIndex) -> f64 {
        self.lane(idx)
            .expect("lane index out of range")
            .speed_limit_mps
    }

    /// `true` if `pos` lies on the road.
    pub fn contains(&self, pos_m: f64) -> bool {
        (0.0..=self.length_m).contains(&pos_m)
    }

    /// Lateral centre offset of a lane from the road's right edge, metres.
    pub fn lane_center_offset(&self, idx: LaneIndex) -> f64 {
        let mut off = 0.0;
        for lane in &self.lanes[..idx.0 as usize] {
            off += lane.width_m;
        }
        off + self.lane(idx).expect("lane index out of range").width_m / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_highway_matches_section_iv() {
        let r = Road::paper_highway();
        assert_eq!(r.nr_lanes(), 4);
        assert_eq!(r.length_m, 9400.0);
        assert_eq!(r.lanes[0].width_m, 3.2);
        assert_eq!(r.speed_limit(LaneIndex(3)), 90.0);
    }

    #[test]
    fn uniform_road_lane_access() {
        let r = Road::uniform("r", 100.0, 2, 3.0, 25.0);
        assert!(r.lane(LaneIndex(1)).is_some());
        assert!(r.lane(LaneIndex(2)).is_none());
        assert!(r.contains(0.0));
        assert!(r.contains(100.0));
        assert!(!r.contains(100.1));
        assert!(!r.contains(-0.1));
    }

    #[test]
    fn lane_center_offsets() {
        let r = Road::uniform("r", 100.0, 3, 4.0, 25.0);
        assert_eq!(r.lane_center_offset(LaneIndex(0)), 2.0);
        assert_eq!(r.lane_center_offset(LaneIndex(1)), 6.0);
        assert_eq!(r.lane_center_offset(LaneIndex(2)), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        Road::uniform("r", 100.0, 0, 3.0, 25.0);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn non_positive_length_rejected() {
        Road::uniform("r", 0.0, 1, 3.0, 25.0);
    }
}
