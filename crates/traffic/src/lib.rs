//! # comfase-traffic — microscopic traffic simulation
//!
//! The SUMO substrate of ComFASE-RS. The paper couples ComFASE to SUMO for
//! vehicle motion, collision incidents and traffic data logging; this crate
//! provides the same capabilities natively in Rust:
//!
//! - [`network`] — straight multi-lane roads (the paper's 4-lane, 9400 m
//!   highway is [`network::Road::paper_highway`]);
//! - [`vehicle`] — vehicle specifications ([`vehicle::VehicleSpec`], with the
//!   paper's platooning car as a preset) and dynamic state;
//! - [`dynamics`] — commanded-to-realised acceleration with first-order
//!   actuation lag, speed/position integration (SUMO ballistic update);
//! - [`car_following`] — Krauss (SUMO default) and IDM models for background
//!   traffic and baselines;
//! - [`collision`] — SUMO-style rear-end collision detection with collider
//!   attribution, the basis of the paper's severity analysis;
//! - [`simulation`] — the per-0.01 s step loop, [`simulation::TrafficSim`];
//! - [`traci`] — a TraCI-style command layer, the explicit coupling surface
//!   used by the vehicular network simulation;
//! - [`trace`] — per-vehicle trajectory logs (speed, acceleration, position)
//!   used by ComFASE's result classification.
//!
//! # Example
//!
//! ```
//! use comfase_des::rng::RngStream;
//! use comfase_traffic::network::{LaneIndex, Road};
//! use comfase_traffic::simulation::TrafficSim;
//! use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = TrafficSim::new(Road::paper_highway(), RngStream::new(1));
//! sim.add_vehicle(Vehicle::new(
//!     VehicleId(1),
//!     VehicleSpec::paper_platooning_car(),
//!     100.0,
//!     LaneIndex(0),
//!     20.0,
//! ))?;
//! sim.run_steps(100); // one second
//! assert!(sim.vehicle(VehicleId(1)).unwrap().state.pos_m > 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod car_following;
pub mod collision;
pub mod dynamics;
pub mod lane_index;
pub mod network;
pub mod simulation;
pub mod trace;
pub mod traci;
pub mod vehicle;

pub use collision::{Collision, CollisionPolicy};
pub use lane_index::{LaneEntry, LaneOrder};
pub use network::{Lane, LaneIndex, Road};
pub use simulation::{LeaderLookup, TrafficError, TrafficSim, TrafficStats, HARD_DECEL_MPS2};
pub use trace::{TrafficTrace, VehicleTrace};
pub use vehicle::{Vehicle, VehicleId, VehicleSpec};
