//! Longitudinal vehicle dynamics: actuation lag, limits, and integration.
//!
//! Each simulation step turns a *commanded* acceleration (from a
//! car-following model or an external platooning controller) into a
//! *realised* acceleration and integrates speed and position:
//!
//! 1. the command is clamped to the vehicle's acceleration/deceleration
//!    ability;
//! 2. a first-order actuation (engine) lag filters the command, as in
//!    Plexe's realistic engine model (exact exponential discretisation, so
//!    the filter is stable for any step size);
//! 3. speed is integrated and clamped to `[0, max_speed]`;
//! 4. position advances ballistically with the average of old and new speed
//!    (SUMO semantics).

use serde::{Deserialize, Serialize};

use crate::vehicle::{Vehicle, VehicleSpec};

/// Outcome of integrating one vehicle over one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Realised acceleration over the step, m/s².
    pub accel_mps2: f64,
    /// Speed at the end of the step, m/s.
    pub speed_mps: f64,
    /// Distance travelled during the step, m.
    pub distance_m: f64,
}

impl StepOutcome {
    /// True when every kinematic quantity of the step is finite.
    ///
    /// The release-mode numeric guard: `debug_assert`s catch non-finite
    /// kinematics during development, while [`is_finite`](Self::is_finite)
    /// lets the simulation loop detect the same divergence in `--release`
    /// builds and route it through the structured failure path
    /// (`FailureKind::NumericDiverged`) instead of silently poisoning
    /// downstream comparisons.
    pub fn is_finite(&self) -> bool {
        self.accel_mps2.is_finite() && self.speed_mps.is_finite() && self.distance_m.is_finite()
    }
}

/// Clamps a commanded acceleration to the vehicle's physical ability.
pub fn clamp_command(spec: &VehicleSpec, accel_cmd: f64) -> f64 {
    accel_cmd.clamp(-spec.max_decel_mps2, spec.max_accel_mps2)
}

/// Applies the first-order actuation lag to move the realised acceleration
/// toward the (already clamped) commanded one over `dt_s` seconds.
///
/// With `lag = 0` the command takes effect immediately.
pub fn apply_actuation_lag(spec: &VehicleSpec, current: f64, commanded: f64, dt_s: f64) -> f64 {
    if spec.actuation_lag_s <= 0.0 {
        commanded
    } else {
        // Exact solution of  a' = (cmd - a)/tau  over dt.
        let alpha = (-dt_s / spec.actuation_lag_s).exp();
        commanded + (current - commanded) * alpha
    }
}

/// Integrates one vehicle over one step of `dt_s` seconds and returns what
/// happened. Does not mutate the vehicle; see [`step_vehicle`].
///
/// # Panics
///
/// Panics if `dt_s <= 0`.
pub fn integrate(
    spec: &VehicleSpec,
    speed: f64,
    accel: f64,
    commanded: f64,
    dt_s: f64,
) -> StepOutcome {
    assert!(dt_s > 0.0, "step size must be positive");
    // Sim sanitizer: a NaN/infinite kinematic input poisons every downstream
    // comparison (collision sorting, controller gains) in run-dependent ways.
    // NaN propagates through `clamp`, so a poisoned input always surfaces as
    // a non-finite outcome — the simulation loop checks
    // [`StepOutcome::is_finite`] after every step (in release builds too)
    // and reports divergence through the structured failure path.
    let cmd = clamp_command(spec, commanded);
    let mut a = apply_actuation_lag(spec, accel, cmd, dt_s);
    a = clamp_command(spec, a);
    let raw_speed = speed + a * dt_s;
    let new_speed = raw_speed.clamp(0.0, spec.max_speed_mps);
    // If the speed clamped (e.g. braking to a stop), report the acceleration
    // actually realised, not the commanded one.
    let realised = (new_speed - speed) / dt_s;
    let distance = (speed + new_speed) / 2.0 * dt_s;
    StepOutcome {
        accel_mps2: realised,
        speed_mps: new_speed,
        distance_m: distance,
    }
}

/// Integrates a [`Vehicle`] in place over `dt_s` seconds using its current
/// commanded acceleration.
pub fn step_vehicle(vehicle: &mut Vehicle, dt_s: f64) -> StepOutcome {
    let out = integrate(
        &vehicle.spec,
        vehicle.state.speed_mps,
        vehicle.state.accel_mps2,
        vehicle.commanded_accel_mps2,
        dt_s,
    );
    vehicle.state.speed_mps = out.speed_mps;
    vehicle.state.accel_mps2 = out.accel_mps2;
    vehicle.state.pos_m += out.distance_m;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LaneIndex;
    use crate::vehicle::VehicleId;

    fn lagless_spec() -> VehicleSpec {
        VehicleSpec {
            actuation_lag_s: 0.0,
            ..VehicleSpec::paper_platooning_car()
        }
    }

    #[test]
    fn command_clamping() {
        let s = lagless_spec();
        assert_eq!(clamp_command(&s, 100.0), 2.5);
        assert_eq!(clamp_command(&s, -100.0), -9.0);
        assert_eq!(clamp_command(&s, 1.0), 1.0);
    }

    #[test]
    fn constant_accel_integration() {
        let s = lagless_spec();
        let out = integrate(&s, 10.0, 0.0, 2.0, 0.1);
        assert!((out.speed_mps - 10.2).abs() < 1e-12);
        assert!((out.accel_mps2 - 2.0).abs() < 1e-12);
        assert!((out.distance_m - 1.01).abs() < 1e-12);
    }

    #[test]
    fn speed_never_goes_negative() {
        let s = lagless_spec();
        let out = integrate(&s, 0.5, 0.0, -9.0, 0.1);
        assert_eq!(out.speed_mps, 0.0);
        // Realised decel is only what was needed to stop.
        assert!((out.accel_mps2 - (-5.0)).abs() < 1e-12);
        assert!(out.distance_m > 0.0);
    }

    #[test]
    fn speed_caps_at_max() {
        let s = lagless_spec();
        let out = integrate(&s, 49.99, 0.0, 2.5, 0.1);
        assert_eq!(out.speed_mps, 50.0);
        assert!(out.accel_mps2 < 2.5);
    }

    #[test]
    fn actuation_lag_filters_command() {
        let s = VehicleSpec::paper_platooning_car(); // lag 0.5 s
        let a1 = apply_actuation_lag(&s, 0.0, 2.0, 0.1);
        // One 0.1 s step toward 2.0 with tau 0.5: 2*(1 - e^-0.2) ~ 0.3625
        assert!((a1 - 2.0 * (1.0 - (-0.2f64).exp())).abs() < 1e-12);
        assert!(a1 > 0.0 && a1 < 2.0);
    }

    #[test]
    fn lag_converges_to_command() {
        let s = VehicleSpec::paper_platooning_car();
        let mut a = 0.0;
        for _ in 0..1000 {
            a = apply_actuation_lag(&s, a, 2.0, 0.01);
        }
        assert!((a - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_lag_is_instant() {
        let s = lagless_spec();
        assert_eq!(apply_actuation_lag(&s, 0.0, 2.0, 0.01), 2.0);
    }

    #[test]
    fn step_vehicle_mutates_state() {
        let mut v = Vehicle::new(VehicleId(1), lagless_spec(), 100.0, LaneIndex(0), 20.0);
        v.command_accel(1.0);
        let out = step_vehicle(&mut v, 0.01);
        assert_eq!(v.state.speed_mps, out.speed_mps);
        assert!((v.state.pos_m - 100.0 - out.distance_m).abs() < 1e-12);
        assert!(v.state.accel_mps2 > 0.0);
    }

    #[test]
    fn ballistic_position_update() {
        // Braking from 10 m/s at -5 m/s^2 over 2 s covers 10 m, not 20.
        let s = lagless_spec();
        let mut speed = 10.0;
        let mut accel = 0.0;
        let mut pos = 0.0;
        for _ in 0..200 {
            let out = integrate(&s, speed, accel, -5.0, 0.01);
            speed = out.speed_mps;
            accel = out.accel_mps2;
            pos += out.distance_m;
        }
        assert_eq!(speed, 0.0);
        assert!((pos - 10.0).abs() < 0.05, "pos {pos}");
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn zero_dt_rejected() {
        integrate(&lagless_spec(), 0.0, 0.0, 0.0, 0.0);
    }
}
