//! Per-vehicle trajectory logging.
//!
//! ComFASE classifies experiments from SUMO's logged traffic data (speed,
//! acceleration/deceleration, position — §II-C). [`TrafficTrace`] is that
//! log: one [`VehicleTrace`] per vehicle plus all collision incidents.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comfase_des::stats::TimeSeries;
use comfase_des::time::SimTime;

use crate::collision::Collision;
use crate::vehicle::{Vehicle, VehicleId};

/// Recorded trajectory of one vehicle.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VehicleTrace {
    /// Speed samples, m/s.
    pub speed: TimeSeries,
    /// Realised acceleration samples, m/s².
    pub accel: TimeSeries,
    /// Front-bumper position samples, metres.
    pub pos: TimeSeries,
}

impl VehicleTrace {
    /// Creates an empty trace with room for `samples` samples per series.
    pub fn with_capacity(samples: usize) -> Self {
        VehicleTrace {
            speed: TimeSeries::with_capacity(samples),
            accel: TimeSeries::with_capacity(samples),
            pos: TimeSeries::with_capacity(samples),
        }
    }

    /// Largest deceleration magnitude observed, m/s² (0 if never braked).
    pub fn max_decel(&self) -> f64 {
        self.accel
            .iter_values()
            .fold(0.0, |m, a| if -a > m { -a } else { m })
    }

    /// Largest acceleration observed, m/s² (0 if never accelerated).
    pub fn max_accel(&self) -> f64 {
        self.accel.iter_values().fold(0.0, f64::max)
    }

    /// Bytes of sample storage this trace shares (rather than copies) when
    /// cloned — the sealed chunks of its three series. Diagnostic for the
    /// fork-cost bench.
    pub fn shared_bytes(&self) -> usize {
        self.speed.shared_bytes() + self.accel.shared_bytes() + self.pos.shared_bytes()
    }

    /// Largest absolute speed difference to another trace, comparing
    /// sample-by-sample at this trace's sample times.
    ///
    /// Used for the paper's *Non-effective* class ("identical speed profiles
    /// as in the golden run"). Samples missing in `other` count as a
    /// difference of the full speed value.
    pub fn max_speed_deviation(&self, other: &VehicleTrace) -> f64 {
        let mut max = 0.0f64;
        for (t, v) in self.speed.iter() {
            let o = other.speed.sample_at(t).unwrap_or(0.0);
            max = max.max((v - o).abs());
        }
        max
    }
}

/// Decimation control for trajectory logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record every n-th simulation step (1 = every step).
    pub sample_every: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { sample_every: 1 }
    }
}

/// The complete traffic log of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficTrace {
    per_vehicle: BTreeMap<VehicleId, VehicleTrace>,
    /// All collision incidents, in time order.
    pub collisions: Vec<Collision>,
    /// Expected samples per vehicle; new per-vehicle buffers are created with
    /// this capacity. Purely a performance hint, so not part of the log.
    #[serde(skip)]
    capacity_hint: usize,
}

// Manual equality: the capacity hint is an allocation detail, so a trace
// recorded with pre-sized buffers equals the same trace recorded without.
impl PartialEq for TrafficTrace {
    fn eq(&self, other: &Self) -> bool {
        self.per_vehicle == other.per_vehicle && self.collisions == other.collisions
    }
}

impl TrafficTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the expected number of samples per vehicle so trace buffers are
    /// allocated once up front instead of growing step by step.
    pub fn set_capacity_hint(&mut self, samples: usize) {
        self.capacity_hint = samples;
    }

    /// Records the current state of every active vehicle.
    pub fn record_step(&mut self, time: SimTime, vehicles: &[Vehicle]) {
        let hint = self.capacity_hint;
        for v in vehicles.iter().filter(|v| v.active) {
            let tr = self
                .per_vehicle
                .entry(v.id)
                .or_insert_with(|| VehicleTrace::with_capacity(hint));
            tr.speed.record(time, v.state.speed_mps);
            tr.accel.record(time, v.state.accel_mps2);
            tr.pos.record(time, v.state.pos_m);
        }
    }

    /// Appends collision incidents.
    pub fn record_collisions(&mut self, collisions: &[Collision]) {
        self.collisions.extend_from_slice(collisions);
    }

    /// Trace of one vehicle, if it was ever recorded.
    pub fn vehicle(&self, id: VehicleId) -> Option<&VehicleTrace> {
        self.per_vehicle.get(&id)
    }

    /// Iterates over `(vehicle, trace)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VehicleId, &VehicleTrace)> {
        self.per_vehicle.iter().map(|(k, v)| (*k, v))
    }

    /// Ids of all recorded vehicles.
    pub fn vehicle_ids(&self) -> Vec<VehicleId> {
        self.per_vehicle.keys().copied().collect()
    }

    /// Largest deceleration across all vehicles, m/s².
    pub fn max_decel_overall(&self) -> f64 {
        self.per_vehicle
            .values()
            .map(VehicleTrace::max_decel)
            .fold(0.0, f64::max)
    }

    /// First collision incident, if any.
    pub fn first_collision(&self) -> Option<&Collision> {
        self.collisions.first()
    }

    /// `true` if any collision was recorded.
    pub fn has_collision(&self) -> bool {
        !self.collisions.is_empty()
    }

    /// Total bytes of sample storage shared (not copied) by a clone of this
    /// trace, summed over all vehicles. Diagnostic for the fork-cost bench.
    pub fn shared_bytes(&self) -> usize {
        self.per_vehicle
            .values()
            .map(VehicleTrace::shared_bytes)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LaneIndex;
    use crate::vehicle::VehicleSpec;

    fn veh(id: u32, pos: f64, speed: f64, accel: f64) -> Vehicle {
        let mut v = Vehicle::new(
            VehicleId(id),
            VehicleSpec::paper_platooning_car(),
            pos,
            LaneIndex(0),
            speed,
        );
        v.state.accel_mps2 = accel;
        v
    }

    #[test]
    fn records_only_active_vehicles() {
        let mut trace = TrafficTrace::new();
        let mut vehicles = vec![veh(1, 10.0, 20.0, 0.0), veh(2, 0.0, 20.0, 0.0)];
        vehicles[1].active = false;
        trace.record_step(SimTime::ZERO, &vehicles);
        assert!(trace.vehicle(VehicleId(1)).is_some());
        assert!(trace.vehicle(VehicleId(2)).is_none());
    }

    #[test]
    fn max_decel_over_run() {
        let mut trace = TrafficTrace::new();
        for (i, a) in [0.5, -1.2, -6.3, 2.0].iter().enumerate() {
            trace.record_step(SimTime::from_secs(i as i64), &[veh(1, 0.0, 20.0, *a)]);
        }
        let tr = trace.vehicle(VehicleId(1)).unwrap();
        assert!((tr.max_decel() - 6.3).abs() < 1e-12);
        assert!((tr.max_accel() - 2.0).abs() < 1e-12);
        assert!((trace.max_decel_overall() - 6.3).abs() < 1e-12);
    }

    #[test]
    fn max_decel_zero_without_braking() {
        let mut trace = TrafficTrace::new();
        trace.record_step(SimTime::ZERO, &[veh(1, 0.0, 20.0, 1.0)]);
        assert_eq!(trace.vehicle(VehicleId(1)).unwrap().max_decel(), 0.0);
    }

    #[test]
    fn speed_deviation_between_traces() {
        let mut a = TrafficTrace::new();
        let mut b = TrafficTrace::new();
        for i in 0..10 {
            a.record_step(SimTime::from_secs(i), &[veh(1, 0.0, 20.0, 0.0)]);
            let speed = if i == 5 { 17.5 } else { 20.0 };
            b.record_step(SimTime::from_secs(i), &[veh(1, 0.0, speed, 0.0)]);
        }
        let dev = a
            .vehicle(VehicleId(1))
            .unwrap()
            .max_speed_deviation(b.vehicle(VehicleId(1)).unwrap());
        assert!((dev - 2.5).abs() < 1e-12);
    }

    #[test]
    fn identical_traces_have_zero_deviation() {
        let mut a = TrafficTrace::new();
        for i in 0..10 {
            a.record_step(SimTime::from_secs(i), &[veh(1, 0.0, 20.0, 0.0)]);
        }
        let tr = a.vehicle(VehicleId(1)).unwrap();
        assert_eq!(tr.max_speed_deviation(tr), 0.0);
    }

    #[test]
    fn collision_bookkeeping() {
        let mut trace = TrafficTrace::new();
        assert!(!trace.has_collision());
        assert!(trace.first_collision().is_none());
        let c = Collision {
            time: SimTime::from_secs(5),
            collider: VehicleId(2),
            victim: VehicleId(1),
            lane: LaneIndex(0),
            pos_m: 120.0,
            collider_speed_mps: 25.0,
            victim_speed_mps: 20.0,
            overlap_m: 0.4,
        };
        trace.record_collisions(std::slice::from_ref(&c));
        assert!(trace.has_collision());
        assert_eq!(trace.first_collision(), Some(&c));
    }
}
