//! Per-lane sorted vehicle orderings for O(log n) leader lookup.
//!
//! [`LaneOrder`] keeps, per lane, the active vehicles sorted by
//! `(pos_m, VehicleId)` — the same total order the linear reference scan in
//! [`TrafficSim::leader_of_linear`] minimises over, so an indexed lookup
//! returns exactly the vehicle the O(n) scan would. Positions drift by at
//! most one integration step between refreshes, so re-sorting uses an
//! adaptive insertion sort that is O(n) on the nearly-sorted common case;
//! structural changes (vehicles added, deactivated, or mutated from
//! outside) invalidate the index wholesale and force a counted rebuild.
//!
//! Ordering uses `f64::total_cmp`, so even NaN-poisoned positions (caught
//! separately by the numeric guard) order deterministically.
//!
//! [`TrafficSim::leader_of_linear`]: crate::simulation::TrafficSim::leader_of_linear

use std::cmp::Ordering;

use crate::vehicle::{Vehicle, VehicleId};

/// One indexed vehicle: its position, id, and slot in the simulation's
/// vehicle vector (slots are stable — vehicles are only ever appended).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneEntry {
    /// Front-bumper position along the road, metres.
    pub pos_m: f64,
    /// The vehicle's id (tie-breaker for equal positions).
    pub id: VehicleId,
    /// Index into `TrafficSim::vehicles`.
    pub slot: usize,
}

impl LaneEntry {
    fn key_cmp(&self, other: &LaneEntry) -> Ordering {
        self.pos_m
            .total_cmp(&other.pos_m)
            .then(self.id.cmp(&other.id))
    }
}

/// Per-lane `(pos_m, VehicleId)`-sorted orderings over the active vehicles.
///
/// `Clone` so it snapshots with the owning `TrafficSim` (PrefixFork).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneOrder {
    lanes: Vec<Vec<LaneEntry>>,
    rebuilds: u64,
    /// Membership may be stale (vehicle added/deactivated/externally
    /// mutated): only a full rebuild restores validity.
    structure_dirty: bool,
    /// Positions are stale (dynamics integrated since the last refresh).
    positions_current: bool,
}

impl Default for LaneOrder {
    fn default() -> Self {
        LaneOrder {
            lanes: Vec::new(),
            rebuilds: 0,
            structure_dirty: true,
            positions_current: false,
        }
    }
}

impl LaneOrder {
    /// `true` when the index reflects the current vehicle set and
    /// positions and may answer queries.
    pub fn is_usable(&self) -> bool {
        !self.structure_dirty && self.positions_current
    }

    /// Full rebuilds performed so far (structural invalidations; per-step
    /// position refreshes are not counted).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Marks the vehicle set as changed; the next refresh must rebuild.
    pub fn mark_structure_dirty(&mut self) {
        self.structure_dirty = true;
    }

    /// Marks positions as stale after a dynamics integration.
    pub fn invalidate_positions(&mut self) {
        self.positions_current = false;
    }

    /// `true` if a structural rebuild is pending.
    pub fn structure_dirty(&self) -> bool {
        self.structure_dirty
    }

    /// `true` if positions are up to date.
    pub fn positions_current(&self) -> bool {
        self.positions_current
    }

    /// Rebuilds the whole index from the active vehicles (counted).
    pub fn rebuild(&mut self, nr_lanes: u8, vehicles: &[Vehicle]) {
        self.lanes.clear();
        self.lanes.resize(nr_lanes as usize, Vec::new());
        for (slot, v) in vehicles.iter().enumerate() {
            if !v.active {
                continue;
            }
            if let Some(lane) = self.lanes.get_mut(v.state.lane.0 as usize) {
                lane.push(LaneEntry {
                    pos_m: v.state.pos_m,
                    id: v.id,
                    slot,
                });
            }
        }
        for lane in &mut self.lanes {
            lane.sort_by(LaneEntry::key_cmp);
        }
        self.rebuilds += 1;
        self.structure_dirty = false;
        self.positions_current = true;
    }

    /// Pulls fresh positions through the stored slots and restores sorted
    /// order with an adaptive insertion sort (O(n) when one integration
    /// step barely perturbs the order — the common case). Not counted as a
    /// rebuild.
    ///
    /// Must not be called while `structure_dirty` (slots might designate
    /// deactivated vehicles); callers go through the owning simulation,
    /// which rebuilds instead in that case.
    pub fn refresh_positions(&mut self, vehicles: &[Vehicle]) {
        debug_assert!(!self.structure_dirty);
        for lane in &mut self.lanes {
            for e in lane.iter_mut() {
                e.pos_m = vehicles[e.slot].state.pos_m;
            }
            for i in 1..lane.len() {
                let mut j = i;
                while j > 0 && lane[j - 1].key_cmp(&lane[j]) == Ordering::Greater {
                    lane.swap(j - 1, j);
                    j -= 1;
                }
            }
        }
        self.positions_current = true;
    }

    /// The nearest entry strictly after `(pos_m, id)` in the lane's
    /// `(pos_m, VehicleId)` order — the queried vehicle's leader.
    pub fn leader_in_lane(&self, lane: u8, pos_m: f64, id: VehicleId) -> Option<&LaneEntry> {
        let lane = self.lanes.get(lane as usize)?;
        let i = lane.partition_point(|e| {
            e.pos_m.total_cmp(&pos_m).then(e.id.cmp(&id)) != Ordering::Greater
        });
        lane.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LaneIndex;
    use crate::vehicle::VehicleSpec;

    fn car(id: u32, pos: f64, lane: u8) -> Vehicle {
        Vehicle::new(
            VehicleId(id),
            VehicleSpec::default_car(),
            pos,
            LaneIndex(lane),
            20.0,
        )
    }

    #[test]
    fn new_index_is_unusable_until_rebuilt() {
        let mut idx = LaneOrder::default();
        assert!(!idx.is_usable());
        idx.rebuild(2, &[car(1, 50.0, 0)]);
        assert!(idx.is_usable());
        assert_eq!(idx.rebuilds(), 1);
    }

    #[test]
    fn leader_is_next_in_pos_id_order() {
        let mut idx = LaneOrder::default();
        let vehicles = vec![car(3, 100.0, 0), car(1, 50.0, 0), car(2, 100.0, 0)];
        idx.rebuild(1, &vehicles);
        // From 50.0/id1: next is (100.0, id2).
        assert_eq!(
            idx.leader_in_lane(0, 50.0, VehicleId(1)).unwrap().id,
            VehicleId(2)
        );
        // Equal positions tie-break by id: id2's leader is id3.
        assert_eq!(
            idx.leader_in_lane(0, 100.0, VehicleId(2)).unwrap().id,
            VehicleId(3)
        );
        // The frontmost vehicle has no leader.
        assert!(idx.leader_in_lane(0, 100.0, VehicleId(3)).is_none());
        // Unknown lane: no leader.
        assert!(idx.leader_in_lane(7, 0.0, VehicleId(1)).is_none());
    }

    #[test]
    fn inactive_vehicles_are_not_indexed() {
        let mut idx = LaneOrder::default();
        let mut vehicles = vec![car(1, 50.0, 0), car(2, 100.0, 0)];
        vehicles[1].active = false;
        idx.rebuild(1, &vehicles);
        assert!(idx.leader_in_lane(0, 50.0, VehicleId(1)).is_none());
    }

    #[test]
    fn refresh_restores_order_after_position_drift() {
        let mut idx = LaneOrder::default();
        let mut vehicles = vec![car(1, 50.0, 0), car(2, 60.0, 0)];
        idx.rebuild(1, &vehicles);
        // Vehicle 1 overtakes vehicle 2 (teleport for the test's sake).
        vehicles[0].state.pos_m = 70.0;
        idx.invalidate_positions();
        assert!(!idx.is_usable());
        idx.refresh_positions(&vehicles);
        assert!(idx.is_usable());
        assert_eq!(
            idx.leader_in_lane(0, 60.0, VehicleId(2)).unwrap().id,
            VehicleId(1)
        );
        assert_eq!(idx.rebuilds(), 1, "refresh is not a rebuild");
    }

    #[test]
    fn lanes_are_independent() {
        let mut idx = LaneOrder::default();
        let vehicles = vec![car(1, 50.0, 0), car(2, 100.0, 1)];
        idx.rebuild(2, &vehicles);
        assert!(idx.leader_in_lane(0, 50.0, VehicleId(1)).is_none());
        assert_eq!(
            idx.leader_in_lane(1, 0.0, VehicleId(9)).unwrap().id,
            VehicleId(2)
        );
    }
}
