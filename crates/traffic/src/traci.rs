//! TraCI-style command interface to the traffic simulation.
//!
//! Veins talks to SUMO over TraCI, a request/response protocol. Our traffic
//! simulator is in-process, but we keep an explicit command layer with the
//! same shape: callers (the co-simulation world, tests, tooling) can drive
//! the simulation through serializable [`TraciCommand`] values and get
//! [`TraciResponse`] values back. This keeps the coupling surface explicit
//! and testable, exactly where Veins' `TraCIScenarioManager` sits.

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

use crate::network::LaneIndex;
use crate::simulation::{TrafficError, TrafficSim};
use crate::vehicle::{Vehicle, VehicleId, VehicleSpec, VehicleState};

/// A TraCI-style request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraciCommand {
    /// Advance the simulation by one step.
    SimulationStep,
    /// Insert a vehicle.
    AddVehicle {
        /// New vehicle id.
        id: VehicleId,
        /// Vehicle type.
        spec: VehicleSpec,
        /// Front-bumper position, metres.
        pos_m: f64,
        /// Lane index.
        lane: LaneIndex,
        /// Initial speed, m/s.
        speed_mps: f64,
    },
    /// Hand longitudinal control of a vehicle to the caller.
    SetExternalControl(VehicleId),
    /// Set the commanded acceleration of a vehicle.
    CommandAccel(VehicleId, f64),
    /// Read a vehicle's dynamic state.
    GetState(VehicleId),
    /// Read the id and gap of the vehicle ahead.
    GetLeader(VehicleId),
    /// Read the current simulation time.
    GetTime,
    /// Number of collisions recorded so far.
    GetCollisionCount,
}

/// A TraCI-style response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraciResponse {
    /// Command executed, nothing to return.
    Ok,
    /// Vehicle state snapshot.
    State(VehicleState),
    /// Leader id and bumper-to-bumper gap (`None` = free road).
    Leader(Option<(VehicleId, f64)>),
    /// Current simulation time.
    Time(SimTime),
    /// Collision count.
    CollisionCount(usize),
}

/// Executes a TraCI command against a simulation.
///
/// # Errors
///
/// Propagates [`TrafficError`] from the underlying operation (unknown
/// vehicle, duplicate id, off-road placement).
pub fn execute(sim: &mut TrafficSim, cmd: TraciCommand) -> Result<TraciResponse, TrafficError> {
    match cmd {
        TraciCommand::SimulationStep => {
            sim.step();
            Ok(TraciResponse::Ok)
        }
        TraciCommand::AddVehicle {
            id,
            spec,
            pos_m,
            lane,
            speed_mps,
        } => {
            sim.add_vehicle(Vehicle::new(id, spec, pos_m, lane, speed_mps))?;
            Ok(TraciResponse::Ok)
        }
        TraciCommand::SetExternalControl(id) => {
            sim.set_external_control(id)?;
            Ok(TraciResponse::Ok)
        }
        TraciCommand::CommandAccel(id, a) => {
            sim.command_accel(id, a)?;
            Ok(TraciResponse::Ok)
        }
        TraciCommand::GetState(id) => {
            let v = sim.vehicle(id).ok_or(TrafficError::UnknownVehicle(id))?;
            Ok(TraciResponse::State(v.state.clone()))
        }
        TraciCommand::GetLeader(id) => Ok(TraciResponse::Leader(sim.leader_of(id)?)),
        TraciCommand::GetTime => Ok(TraciResponse::Time(sim.time())),
        TraciCommand::GetCollisionCount => {
            Ok(TraciResponse::CollisionCount(sim.trace().collisions.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Road;
    use comfase_des::rng::RngStream;

    fn sim() -> TrafficSim {
        TrafficSim::new(Road::paper_highway(), RngStream::new(1))
    }

    fn add(id: u32, pos: f64) -> TraciCommand {
        TraciCommand::AddVehicle {
            id: VehicleId(id),
            spec: VehicleSpec::default_car(),
            pos_m: pos,
            lane: LaneIndex(0),
            speed_mps: 20.0,
        }
    }

    #[test]
    fn add_step_and_read_state() {
        let mut s = sim();
        assert_eq!(execute(&mut s, add(1, 100.0)).unwrap(), TraciResponse::Ok);
        execute(&mut s, TraciCommand::SimulationStep).unwrap();
        match execute(&mut s, TraciCommand::GetState(VehicleId(1))).unwrap() {
            TraciResponse::State(st) => assert!(st.pos_m > 100.0),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(
            execute(&mut s, TraciCommand::GetTime).unwrap(),
            TraciResponse::Time(SimTime::from_millis(10))
        );
    }

    #[test]
    fn leader_query() {
        let mut s = sim();
        execute(&mut s, add(1, 100.0)).unwrap();
        execute(&mut s, add(2, 50.0)).unwrap();
        match execute(&mut s, TraciCommand::GetLeader(VehicleId(2))).unwrap() {
            TraciResponse::Leader(Some((id, gap))) => {
                assert_eq!(id, VehicleId(1));
                assert!(gap > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn external_control_via_commands() {
        let mut s = sim();
        execute(&mut s, add(1, 100.0)).unwrap();
        execute(&mut s, TraciCommand::SetExternalControl(VehicleId(1))).unwrap();
        execute(&mut s, TraciCommand::CommandAccel(VehicleId(1), -2.0)).unwrap();
        for _ in 0..100 {
            execute(&mut s, TraciCommand::SimulationStep).unwrap();
        }
        match execute(&mut s, TraciCommand::GetState(VehicleId(1))).unwrap() {
            TraciResponse::State(st) => assert!((st.speed_mps - 18.0).abs() < 0.01),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_propagate() {
        let mut s = sim();
        assert_eq!(
            execute(&mut s, TraciCommand::GetState(VehicleId(7))),
            Err(TrafficError::UnknownVehicle(VehicleId(7)))
        );
    }

    #[test]
    fn collision_count_command() {
        let mut s = sim();
        execute(&mut s, add(1, 100.0)).unwrap();
        assert_eq!(
            execute(&mut s, TraciCommand::GetCollisionCount).unwrap(),
            TraciResponse::CollisionCount(0)
        );
    }

    #[test]
    fn commands_serialize_round_trip() {
        let cmd = add(3, 42.0);
        let json = serde_json::to_string(&cmd).unwrap();
        let back: TraciCommand = serde_json::from_str(&json).unwrap();
        assert_eq!(cmd, back);
    }
}
