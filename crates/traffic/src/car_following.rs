//! Car-following models for background traffic and non-platooning baselines.
//!
//! Two classic models are provided:
//!
//! - [`Krauss`] — SUMO's default stochastic safe-speed model (we default its
//!   driver imperfection σ to 0 for deterministic experiments);
//! - [`Idm`] — the Intelligent Driver Model, a common research baseline.
//!
//! Both produce a commanded acceleration from the ego state and the gap to
//! the leader; the commanded value is then subject to the vehicle dynamics in
//! [`crate::dynamics`].

use serde::{Deserialize, Serialize};

/// What a car-following model sees each step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfInput {
    /// Ego speed, m/s.
    pub speed_mps: f64,
    /// Bumper-to-bumper gap to the leader, metres (`None` = free road).
    pub gap_m: Option<f64>,
    /// Leader speed, m/s (ignored when `gap_m` is `None`).
    pub leader_speed_mps: f64,
    /// Applicable speed limit (min of lane limit and vehicle max), m/s.
    pub speed_limit_mps: f64,
    /// Ego maximum acceleration, m/s².
    pub max_accel_mps2: f64,
    /// Ego comfortable/service deceleration, m/s² (positive).
    pub service_decel_mps2: f64,
    /// Step length, seconds.
    pub dt_s: f64,
    /// Uniform random draw in `[0, 1)` for stochastic models.
    pub noise: f64,
}

/// A longitudinal car-following model.
pub trait CarFollowingModel: std::fmt::Debug + Send + Sync {
    /// Commanded acceleration for this step, m/s² (may exceed vehicle
    /// limits; dynamics clamp it).
    fn accel(&self, input: &CfInput) -> f64;

    /// Model name for logs and reports.
    fn name(&self) -> &'static str;

    /// Clones the model into a new box (needed to snapshot a running
    /// simulation that owns its model as a trait object).
    fn clone_box(&self) -> Box<dyn CarFollowingModel>;
}

impl Clone for Box<dyn CarFollowingModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// SUMO's Krauss model (Krauß 1998): drive as fast as allowed while always
/// being able to stop if the leader brakes at full service deceleration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Krauss {
    /// Driver reaction time, seconds (SUMO `tau`, default 1.0).
    pub reaction_time_s: f64,
    /// Driver imperfection `sigma` in `[0, 1]`; 0 = deterministic.
    pub sigma: f64,
}

impl Default for Krauss {
    fn default() -> Self {
        Krauss {
            reaction_time_s: 1.0,
            sigma: 0.0,
        }
    }
}

impl Krauss {
    /// Safe speed so that the follower can always stop behind the leader
    /// (classic Krauss formulation).
    pub fn safe_speed(&self, gap_m: f64, leader_speed_mps: f64, decel: f64) -> f64 {
        let tb = self.reaction_time_s * decel;
        let term = tb * tb + leader_speed_mps * leader_speed_mps + 2.0 * decel * gap_m.max(0.0);
        (-tb + term.sqrt()).max(0.0)
    }
}

impl CarFollowingModel for Krauss {
    fn accel(&self, input: &CfInput) -> f64 {
        let v = input.speed_mps;
        let v_free = (v + input.max_accel_mps2 * input.dt_s).min(input.speed_limit_mps);
        let v_des = match input.gap_m {
            Some(gap) => {
                let v_safe = self.safe_speed(gap, input.leader_speed_mps, input.service_decel_mps2);
                v_free.min(v_safe)
            }
            None => v_free,
        };
        // Driver imperfection: randomly drive slightly slower than possible.
        let dawdle = self.sigma * input.max_accel_mps2 * input.dt_s * input.noise;
        let v_next = (v_des - dawdle).max(0.0);
        (v_next - v) / input.dt_s
    }

    fn name(&self) -> &'static str {
        "Krauss"
    }

    fn clone_box(&self) -> Box<dyn CarFollowingModel> {
        Box::new(self.clone())
    }
}

/// Intelligent Driver Model (Treiber et al. 2000).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Idm {
    /// Minimum standstill gap s₀, metres.
    pub min_gap_m: f64,
    /// Desired time headway T, seconds.
    pub time_headway_s: f64,
    /// Acceleration exponent δ (4 in the original paper).
    pub delta: f64,
}

impl Default for Idm {
    fn default() -> Self {
        Idm {
            min_gap_m: 2.0,
            time_headway_s: 1.2,
            delta: 4.0,
        }
    }
}

impl CarFollowingModel for Idm {
    fn accel(&self, input: &CfInput) -> f64 {
        let v = input.speed_mps;
        let v0 = input.speed_limit_mps.max(0.1);
        let a = input.max_accel_mps2;
        let b = input.service_decel_mps2;
        let free_term = 1.0 - (v / v0).powf(self.delta);
        let interaction = match input.gap_m {
            Some(gap) => {
                let dv = v - input.leader_speed_mps;
                let s_star = self.min_gap_m
                    + (v * self.time_headway_s + v * dv / (2.0 * (a * b).sqrt())).max(0.0);
                let s = gap.max(0.01);
                (s_star / s).powi(2)
            }
            None => 0.0,
        };
        a * (free_term - interaction)
    }

    fn name(&self) -> &'static str {
        "IDM"
    }

    fn clone_box(&self) -> Box<dyn CarFollowingModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_input(speed: f64) -> CfInput {
        CfInput {
            speed_mps: speed,
            gap_m: None,
            leader_speed_mps: 0.0,
            speed_limit_mps: 30.0,
            max_accel_mps2: 2.0,
            service_decel_mps2: 4.5,
            dt_s: 0.1,
            noise: 0.0,
        }
    }

    #[test]
    fn krauss_accelerates_on_free_road() {
        let k = Krauss::default();
        let a = k.accel(&free_input(10.0));
        assert!(
            (a - 2.0).abs() < 1e-9,
            "should accelerate at full ability, got {a}"
        );
    }

    #[test]
    fn krauss_respects_speed_limit() {
        let k = Krauss::default();
        let a = k.accel(&free_input(30.0));
        assert!(
            a.abs() < 1e-9,
            "at the limit, no further acceleration, got {a}"
        );
    }

    #[test]
    fn krauss_brakes_for_stopped_leader() {
        let k = Krauss::default();
        let mut input = free_input(20.0);
        input.gap_m = Some(10.0);
        input.leader_speed_mps = 0.0;
        let a = k.accel(&input);
        assert!(a < -1.0, "must brake hard, got {a}");
    }

    #[test]
    fn krauss_safe_speed_is_zero_at_zero_gap_zero_leader() {
        let k = Krauss::default();
        assert_eq!(k.safe_speed(0.0, 0.0, 4.5), 0.0);
    }

    #[test]
    fn krauss_safe_speed_grows_with_gap() {
        let k = Krauss::default();
        let near = k.safe_speed(5.0, 0.0, 4.5);
        let far = k.safe_speed(50.0, 0.0, 4.5);
        assert!(far > near);
    }

    #[test]
    fn krauss_never_commands_negative_speed() {
        let k = Krauss::default();
        let mut input = free_input(0.5);
        input.gap_m = Some(0.0);
        input.leader_speed_mps = 0.0;
        let a = k.accel(&input);
        // Δv >= -v, so speed stays >= 0 after one step.
        assert!(a * input.dt_s >= -input.speed_mps - 1e-12);
    }

    #[test]
    fn krauss_sigma_dawdles() {
        let k = Krauss {
            sigma: 1.0,
            ..Krauss::default()
        };
        let mut input = free_input(10.0);
        input.noise = 1.0;
        let a_noisy = k.accel(&input);
        input.noise = 0.0;
        let a_clean = k.accel(&input);
        assert!(a_noisy < a_clean);
    }

    #[test]
    fn krauss_follower_never_collides() {
        // Follow a leader that brutally brakes; Krauss must keep gap > 0.
        let k = Krauss::default();
        let dt = 0.1;
        let mut lead_pos = 30.0;
        let mut lead_speed = 25.0;
        let mut pos = 0.0;
        let mut speed = 25.0;
        for step in 0..400 {
            // Leader brakes at 6 m/s^2 after 1 s.
            let lead_acc = if step >= 10 { -6.0f64 } else { 0.0 };
            lead_speed = (lead_speed + lead_acc * dt).max(0.0);
            lead_pos += lead_speed * dt;
            let gap = lead_pos - 5.0 - pos; // leader length 5 m
            let input = CfInput {
                speed_mps: speed,
                gap_m: Some(gap),
                leader_speed_mps: lead_speed,
                speed_limit_mps: 30.0,
                max_accel_mps2: 2.0,
                service_decel_mps2: 6.0,
                dt_s: dt,
                noise: 0.0,
            };
            let a = k.accel(&input);
            speed = (speed + a * dt).max(0.0);
            pos += speed * dt;
            assert!(gap > -1e-9, "Krauss collided at step {step}, gap {gap}");
        }
    }

    #[test]
    fn idm_free_road_approaches_limit() {
        let idm = Idm::default();
        let mut v: f64 = 0.0;
        for _ in 0..2000 {
            let a = idm.accel(&CfInput {
                speed_mps: v,
                ..free_input(v)
            });
            v = (v + a * 0.1).max(0.0);
        }
        assert!((v - 30.0).abs() < 0.5, "IDM equilibrium speed {v}");
    }

    #[test]
    fn idm_brakes_when_too_close() {
        let idm = Idm::default();
        let mut input = free_input(20.0);
        input.gap_m = Some(3.0);
        input.leader_speed_mps = 20.0;
        assert!(idm.accel(&input) < 0.0);
    }

    #[test]
    fn idm_equilibrium_gap_near_headway() {
        let idm = Idm::default();
        // At constant speed v with equal leader speed, a=0 when
        // gap = s* / sqrt(1-(v/v0)^delta).
        let v = 20.0;
        let mut input = free_input(v);
        let s_star = idm.min_gap_m + v * idm.time_headway_s;
        let expect = s_star / (1.0f64 - (v / 30.0f64).powf(4.0)).sqrt();
        input.gap_m = Some(expect);
        input.leader_speed_mps = v;
        let a = idm.accel(&input);
        assert!(a.abs() < 0.01, "IDM accel at equilibrium gap: {a}");
    }

    #[test]
    fn model_names() {
        assert_eq!(Krauss::default().name(), "Krauss");
        assert_eq!(Idm::default().name(), "IDM");
    }
}
