//! Vehicles: static specification and dynamic state.

use serde::{Deserialize, Serialize};

use crate::network::LaneIndex;

/// Unique vehicle identifier within a simulation.
///
/// The paper numbers platoon members 1..=4 front to back; we keep the same
/// convention in scenario builders (`VehicleId(1)` is the leader).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "veh.{}", self.0)
    }
}

/// Static (software & hardware) properties of a vehicle — the paper's
/// `vehicleFeatures`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleSpec {
    /// Body length in metres.
    pub length_m: f64,
    /// Maximum speed in m/s.
    pub max_speed_mps: f64,
    /// Maximum acceleration ability in m/s².
    pub max_accel_mps2: f64,
    /// Maximum (emergency) deceleration ability in m/s² (positive number).
    pub max_decel_mps2: f64,
    /// First-order actuation (engine) lag time constant in seconds;
    /// `0` means commands take effect instantly.
    ///
    /// Plexe models driveline dynamics as a first-order lag; we default to
    /// its 0.5 s constant for platooning vehicles.
    pub actuation_lag_s: f64,
}

impl VehicleSpec {
    /// The platooning vehicle used in the paper's scenario (§IV-A.1):
    /// 4 m long, 50 m/s max speed, 2.5 m/s² acceleration ability,
    /// 9 m/s² deceleration ability.
    pub fn paper_platooning_car() -> Self {
        VehicleSpec {
            length_m: 4.0,
            max_speed_mps: 50.0,
            max_accel_mps2: 2.5,
            max_decel_mps2: 9.0,
            actuation_lag_s: 0.5,
        }
    }

    /// A generic passenger car with SUMO-like defaults, for background
    /// traffic.
    pub fn default_car() -> Self {
        VehicleSpec {
            length_m: 5.0,
            max_speed_mps: 38.0,
            max_accel_mps2: 2.6,
            max_decel_mps2: 4.5,
            actuation_lag_s: 0.0,
        }
    }

    /// Validates the physical plausibility of the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.length_m <= 0.0 {
            return Err(format!(
                "vehicle length must be positive, got {}",
                self.length_m
            ));
        }
        if self.max_speed_mps <= 0.0 {
            return Err(format!(
                "max speed must be positive, got {}",
                self.max_speed_mps
            ));
        }
        if self.max_accel_mps2 <= 0.0 {
            return Err(format!(
                "max accel must be positive, got {}",
                self.max_accel_mps2
            ));
        }
        if self.max_decel_mps2 <= 0.0 {
            return Err(format!(
                "max decel must be positive, got {}",
                self.max_decel_mps2
            ));
        }
        if self.actuation_lag_s < 0.0 {
            return Err(format!(
                "actuation lag cannot be negative, got {}",
                self.actuation_lag_s
            ));
        }
        Ok(())
    }
}

/// How a vehicle's commanded acceleration is produced each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMode {
    /// The built-in car-following model drives the vehicle.
    CarFollowing,
    /// An external controller (e.g. the platooning CACC, via the TraCI
    /// coupling) sets the commanded acceleration.
    External,
}

/// Dynamic state of a vehicle.
///
/// `pos_m` is the position of the **front bumper** along the road; the rear
/// bumper is at `pos_m - spec.length_m`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// Front-bumper position along the road, metres.
    pub pos_m: f64,
    /// Speed, m/s (never negative; vehicles do not reverse).
    pub speed_mps: f64,
    /// Realised acceleration, m/s² (negative = braking).
    pub accel_mps2: f64,
    /// Current lane.
    pub lane: LaneIndex,
}

/// A vehicle in the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Identifier, unique per simulation.
    pub id: VehicleId,
    /// Static properties.
    pub spec: VehicleSpec,
    /// Dynamic state.
    pub state: VehicleState,
    /// Who produces the commanded acceleration.
    pub control_mode: ControlMode,
    /// Last commanded acceleration (before actuation lag / limits), m/s².
    pub commanded_accel_mps2: f64,
    /// Whether the vehicle is still active (not removed after a collision).
    pub active: bool,
}

impl Vehicle {
    /// Creates an active vehicle at the given position/lane, initially at
    /// `speed_mps` with zero acceleration, driven by its car-following model.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`VehicleSpec::validate`].
    pub fn new(
        id: VehicleId,
        spec: VehicleSpec,
        pos_m: f64,
        lane: LaneIndex,
        speed_mps: f64,
    ) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid vehicle spec for {id}: {e}");
        }
        Vehicle {
            id,
            spec,
            state: VehicleState {
                pos_m,
                speed_mps,
                accel_mps2: 0.0,
                lane,
            },
            control_mode: ControlMode::CarFollowing,
            commanded_accel_mps2: 0.0,
            active: true,
        }
    }

    /// Rear-bumper position along the road, metres.
    pub fn rear_pos_m(&self) -> f64 {
        self.state.pos_m - self.spec.length_m
    }

    /// Bumper-to-bumper gap to a vehicle ahead (its rear minus our front).
    /// Negative means overlap, i.e. a collision.
    pub fn gap_to(&self, leader: &Vehicle) -> f64 {
        leader.rear_pos_m() - self.state.pos_m
    }

    /// Switches the vehicle to external (TraCI) acceleration control.
    pub fn set_external_control(&mut self) {
        self.control_mode = ControlMode::External;
    }

    /// Sets the commanded acceleration (clamped later by dynamics).
    pub fn command_accel(&mut self, accel_mps2: f64) {
        self.commanded_accel_mps2 = accel_mps2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn veh(id: u32, pos: f64) -> Vehicle {
        Vehicle::new(
            VehicleId(id),
            VehicleSpec::paper_platooning_car(),
            pos,
            LaneIndex(0),
            20.0,
        )
    }

    #[test]
    fn paper_spec_matches_section_iv() {
        let s = VehicleSpec::paper_platooning_car();
        assert_eq!(s.length_m, 4.0);
        assert_eq!(s.max_speed_mps, 50.0);
        assert_eq!(s.max_accel_mps2, 2.5);
        assert_eq!(s.max_decel_mps2, 9.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn gap_geometry() {
        let follower = veh(2, 100.0);
        let leader = veh(1, 109.0);
        // leader rear = 105, follower front = 100 -> gap 5 m
        assert_eq!(follower.gap_to(&leader), 5.0);
        assert_eq!(leader.rear_pos_m(), 105.0);
    }

    #[test]
    fn negative_gap_means_overlap() {
        let follower = veh(2, 100.0);
        let leader = veh(1, 103.0); // rear at 99 < 100
        assert!(follower.gap_to(&leader) < 0.0);
    }

    #[test]
    fn control_mode_switch() {
        let mut v = veh(1, 0.0);
        assert_eq!(v.control_mode, ControlMode::CarFollowing);
        v.set_external_control();
        v.command_accel(-3.0);
        assert_eq!(v.control_mode, ControlMode::External);
        assert_eq!(v.commanded_accel_mps2, -3.0);
    }

    #[test]
    fn spec_validation_catches_nonsense() {
        let mut s = VehicleSpec::default_car();
        s.max_decel_mps2 = 0.0;
        assert!(s.validate().is_err());
        s = VehicleSpec::default_car();
        s.length_m = -1.0;
        assert!(s.validate().unwrap_err().contains("length"));
        s = VehicleSpec::default_car();
        s.actuation_lag_s = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid vehicle spec")]
    fn constructor_rejects_invalid_spec() {
        let mut s = VehicleSpec::default_car();
        s.max_speed_mps = -5.0;
        Vehicle::new(VehicleId(1), s, 0.0, LaneIndex(0), 0.0);
    }

    #[test]
    fn display_id() {
        assert_eq!(VehicleId(2).to_string(), "veh.2");
    }
}
