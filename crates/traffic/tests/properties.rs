//! Property-based tests for the traffic simulation substrate.

use comfase_des::rng::RngStream;
use comfase_des::time::SimTime;
use comfase_traffic::car_following::{CarFollowingModel, CfInput, Idm, Krauss};
use comfase_traffic::collision::detect_collisions;
use comfase_traffic::dynamics::integrate;
use comfase_traffic::network::{LaneIndex, Road};
use comfase_traffic::simulation::TrafficSim;
use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
use proptest::prelude::*;

fn spec() -> VehicleSpec {
    VehicleSpec::paper_platooning_car()
}

proptest! {
    /// Integration never produces speeds outside [0, max_speed], and the
    /// distance covered matches the trapezoidal rule.
    #[test]
    fn dynamics_invariants(
        speed in 0.0f64..50.0,
        accel in -9.0f64..2.5,
        cmd in -50.0f64..50.0,
        dt in 0.001f64..0.5,
    ) {
        let s = spec();
        let out = integrate(&s, speed, accel, cmd, dt);
        prop_assert!((0.0..=s.max_speed_mps).contains(&out.speed_mps));
        let expect = (speed + out.speed_mps) / 2.0 * dt;
        prop_assert!((out.distance_m - expect).abs() < 1e-9);
        // Realised acceleration is consistent with the speed change.
        prop_assert!((out.accel_mps2 - (out.speed_mps - speed) / dt).abs() < 1e-9);
    }

    /// The realised acceleration never exceeds the vehicle's ability.
    #[test]
    fn dynamics_respects_limits(
        speed in 1.0f64..49.0,
        cmd in -100.0f64..100.0,
    ) {
        let mut s = spec();
        s.actuation_lag_s = 0.0;
        let out = integrate(&s, speed, 0.0, cmd, 0.01);
        prop_assert!(out.accel_mps2 <= s.max_accel_mps2 + 1e-9);
        prop_assert!(out.accel_mps2 >= -s.max_decel_mps2 - 1e-9);
    }

    /// A Krauss follower that starts behind a leader never collides, no
    /// matter how brutally the leader brakes.
    #[test]
    fn krauss_is_collision_free(
        init_gap in 5.0f64..60.0,
        init_speed in 5.0f64..30.0,
        brake_step in 10usize..200,
        brake in 1.0f64..9.0,
    ) {
        let k = Krauss::default();
        let dt = 0.1;
        let mut lead_pos = init_gap + 5.0;
        let mut lead_speed = init_speed;
        let mut pos = 0.0;
        let mut speed = init_speed;
        for step in 0..400 {
            let lead_acc = if step >= brake_step { -brake } else { 0.0 };
            lead_speed = (lead_speed + lead_acc * dt).max(0.0);
            lead_pos += lead_speed * dt;
            let gap = lead_pos - 5.0 - pos;
            prop_assert!(gap > -1e-6, "collision at step {step}: gap {gap}");
            let input = CfInput {
                speed_mps: speed,
                gap_m: Some(gap),
                leader_speed_mps: lead_speed,
                speed_limit_mps: 35.0,
                max_accel_mps2: 2.5,
                service_decel_mps2: brake.max(4.5),
                dt_s: dt,
                noise: 0.0,
            };
            let a = k.accel(&input);
            speed = (speed + a * dt).max(0.0);
            pos += speed * dt;
        }
    }

    /// IDM acceleration is bounded by the configured maximum and brakes
    /// grow with closing speed.
    #[test]
    fn idm_bounded_and_monotone(
        speed in 0.0f64..35.0,
        gap in 1.0f64..100.0,
        closing in 0.0f64..10.0,
    ) {
        let idm = Idm::default();
        let input = |dv: f64| CfInput {
            speed_mps: speed,
            gap_m: Some(gap),
            leader_speed_mps: (speed - dv).max(0.0),
            speed_limit_mps: 30.0,
            max_accel_mps2: 2.0,
            service_decel_mps2: 4.5,
            dt_s: 0.1,
            noise: 0.0,
        };
        let a0 = idm.accel(&input(0.0));
        let a1 = idm.accel(&input(closing));
        prop_assert!(a0 <= 2.0 + 1e-9);
        prop_assert!(a1 <= a0 + 1e-9, "closing faster must not accelerate more");
    }

    /// Collision detection reports exactly the adjacent overlapping pairs
    /// per lane.
    #[test]
    fn collision_detection_is_exact(
        positions in proptest::collection::vec((0.0f64..200.0, 0u8..3), 2..12),
    ) {
        let vehicles: Vec<Vehicle> = positions
            .iter()
            .enumerate()
            .map(|(i, &(pos, lane))| {
                Vehicle::new(VehicleId(i as u32 + 1), spec(), pos, LaneIndex(lane), 10.0)
            })
            .collect();
        let collisions = detect_collisions(SimTime::ZERO, &vehicles);
        // Count expected overlaps by sorting per lane.
        let mut expected = 0;
        for lane in 0..3u8 {
            let mut on_lane: Vec<&Vehicle> =
                vehicles.iter().filter(|v| v.state.lane == LaneIndex(lane)).collect();
            on_lane.sort_by(|a, b| a.state.pos_m.partial_cmp(&b.state.pos_m).unwrap());
            for w in on_lane.windows(2) {
                if w[0].gap_to(w[1]) < 0.0 {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(collisions.len(), expected);
        for c in &collisions {
            // The collider is always behind the victim.
            let collider = vehicles.iter().find(|v| v.id == c.collider).unwrap();
            let victim = vehicles.iter().find(|v| v.id == c.victim).unwrap();
            prop_assert!(collider.state.pos_m <= victim.state.pos_m);
            prop_assert_eq!(collider.state.lane, victim.state.lane);
        }
    }

    /// The simulation is deterministic in its seed and vehicles never
    /// leave the speed envelope.
    #[test]
    fn simulation_determinism_and_envelope(
        seed in any::<u64>(),
        n in 1usize..6,
        steps in 10u64..300,
    ) {
        let run = |seed: u64| {
            let mut sim = TrafficSim::new(Road::paper_highway(), RngStream::new(seed));
            for i in 0..n {
                sim.add_vehicle(Vehicle::new(
                    VehicleId(i as u32 + 1),
                    VehicleSpec::default_car(),
                    40.0 * i as f64 + 10.0,
                    LaneIndex(0),
                    20.0,
                ))
                .unwrap();
            }
            sim.run_steps(steps);
            sim.vehicles()
                .iter()
                .map(|v| (v.state.pos_m, v.state.speed_mps))
                .collect::<Vec<_>>()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a, &b);
        for (pos, speed) in a {
            prop_assert!((0.0..=38.0).contains(&speed));
            prop_assert!(pos >= 0.0);
        }
    }
}
