//! Equivalence properties: the per-lane sorted leader index must agree
//! with the linear scan it replaces on every fleet — including exact
//! position ties, deactivated vehicles, and fleets evolved through the
//! car-following step loop.

use comfase_des::rng::RngStream;
use comfase_traffic::network::{LaneIndex, Road};
use comfase_traffic::simulation::{LeaderLookup, TrafficSim};
use comfase_traffic::vehicle::{Vehicle, VehicleId, VehicleSpec};
use proptest::prelude::*;

/// Random fleets on a 4-lane road. Positions are drawn from a small
/// discrete set so exact ties (several vehicles at the same `pos_m` in the
/// same lane) are common rather than measure-zero.
fn any_fleet() -> impl Strategy<Value = Vec<(u8, f64, bool)>> {
    proptest::collection::vec(
        ((0u8..4), (0u32..40), any::<bool>())
            .prop_map(|(lane, slot, active)| (lane, 5.0 + 25.0 * f64::from(slot), active)),
        1..30,
    )
}

fn build_sim(fleet: &[(u8, f64, bool)]) -> TrafficSim {
    let mut sim = TrafficSim::new(
        Road::uniform("prop", 2_000.0, 4, 3.2, 90.0),
        RngStream::new(3),
    );
    for (i, (lane, pos, active)) in fleet.iter().enumerate() {
        let id = VehicleId(i as u32 + 1);
        sim.add_vehicle(Vehicle::new(
            id,
            VehicleSpec::paper_platooning_car(),
            *pos,
            LaneIndex(*lane),
            10.0,
        ))
        .expect("ids are unique and lanes exist");
        if !active {
            sim.vehicle_mut(id).expect("just added").active = false;
        }
    }
    sim
}

/// Every vehicle's indexed leader must equal its linear-scan leader.
fn assert_lookups_agree(sim: &TrafficSim) -> Result<(), TestCaseError> {
    for v in sim.vehicles() {
        prop_assert_eq!(
            sim.leader_of(v.id).expect("known vehicle"),
            sim.leader_of_linear(v.id).expect("known vehicle"),
            "leader lookup diverged for {} at pos {}",
            v.id,
            v.state.pos_m
        );
    }
    Ok(())
}

proptest! {
    /// On a freshly indexed random fleet — ties, gaps and inactive
    /// vehicles included — both lookups agree for every vehicle.
    #[test]
    fn indexed_leader_matches_linear_scan(fleet in any_fleet()) {
        let mut sim = build_sim(&fleet);
        sim.rebuild_lane_index();
        assert_lookups_agree(&sim)?;
    }

    /// The agreement survives the step loop: after any number of
    /// car-following steps the incrementally maintained index still
    /// matches a linear scan, and two sims differing only in lookup
    /// strategy produce bit-identical motion.
    #[test]
    fn agreement_survives_stepping(fleet in any_fleet(), steps in 1u64..120) {
        let mut indexed = build_sim(&fleet);
        let mut linear = build_sim(&fleet);
        linear.set_leader_lookup(LeaderLookup::Linear);

        indexed.run_steps(steps);
        linear.run_steps(steps);
        assert_lookups_agree(&indexed)?;

        let a: Vec<_> = indexed
            .vehicles()
            .iter()
            .map(|v| (v.id, v.state.pos_m.to_bits(), v.state.speed_mps.to_bits(), v.active))
            .collect();
        let b: Vec<_> = linear
            .vehicles()
            .iter()
            .map(|v| (v.id, v.state.pos_m.to_bits(), v.state.speed_mps.to_bits(), v.active))
            .collect();
        prop_assert_eq!(a, b, "lookup strategy leaked into vehicle motion");
    }

    /// Mutating a vehicle through the public accessor invalidates the
    /// index; the next query must see the change exactly as the linear
    /// scan does.
    #[test]
    fn external_mutation_is_visible(
        fleet in any_fleet(),
        who in any::<prop::sample::Index>(),
        new_pos in 0.0f64..1_500.0,
    ) {
        let mut sim = build_sim(&fleet);
        sim.rebuild_lane_index();
        let id = VehicleId(who.index(fleet.len()) as u32 + 1);
        sim.vehicle_mut(id).expect("known vehicle").state.pos_m = new_pos;
        sim.rebuild_lane_index();
        assert_lookups_agree(&sim)?;
    }
}
