//! Property-based tests for the platooning substrate.

use comfase_des::time::SimTime;
use comfase_platoon::beacon::PlatoonBeacon;
use comfase_platoon::controller::{
    Acc, ControllerInput, EgoState, LongitudinalController, MsCacc, PathCacc, Ploeg, RadarReading,
    RadioData,
};
use comfase_platoon::maneuver::{Maneuver, Sinusoidal};
use comfase_platoon::monitor::{MonitorDecision, SafetyMonitor, SafetyMonitorConfig};
use comfase_platoon::platoon::PlatoonSpec;
use proptest::prelude::*;

fn arb_input() -> impl Strategy<Value = ControllerInput> {
    (
        0.0f64..40.0,   // ego speed
        -9.0f64..2.5,   // ego accel
        0.1f64..100.0,  // gap
        -10.0f64..10.0, // closing
        0.0f64..40.0,   // pred speed
        -9.0f64..2.5,   // pred accel
        0.0f64..40.0,   // leader speed
        -9.0f64..2.5,   // leader accel
    )
        .prop_map(|(v, a, gap, closing, pv, pa, lv, la)| ControllerInput {
            ego: EgoState {
                speed_mps: v,
                accel_mps2: a,
            },
            radar: RadarReading {
                gap_m: gap,
                closing_speed_mps: closing,
            },
            radio: RadioData {
                pred_speed_mps: pv,
                pred_accel_mps2: pa,
                leader_speed_mps: lv,
                leader_accel_mps2: la,
            },
            dt_s: 0.01,
        })
}

proptest! {
    /// Beacons round-trip any finite values.
    #[test]
    fn beacon_round_trip(
        vehicle in any::<u32>(),
        pos in -1.0e6f64..1.0e6,
        speed in -100.0f64..100.0,
        accel in -20.0f64..20.0,
        ns in 0i64..1_000_000_000_000,
    ) {
        let b = PlatoonBeacon {
            vehicle,
            pos_m: pos,
            speed_mps: speed,
            accel_mps2: accel,
            sampled: SimTime::from_nanos(ns),
        };
        prop_assert_eq!(PlatoonBeacon::decode(b.encode()).unwrap(), b);
    }

    /// Every controller produces a finite command for bounded inputs.
    #[test]
    fn controllers_are_finite(input in arb_input()) {
        let mut controllers: Vec<Box<dyn LongitudinalController>> = vec![
            Box::new(PathCacc::default()),
            Box::new(MsCacc::default()),
            Box::new(Ploeg::default()),
            Box::new(Acc::default()),
        ];
        for c in &mut controllers {
            let a = c.desired_accel(&input);
            prop_assert!(a.is_finite(), "{} produced {a}", c.name());
        }
    }

    /// PATH CACC gain identities hold for any valid parameterisation.
    #[test]
    fn path_cacc_gain_identities(c1 in 0.01f64..0.99, omega in 0.05f64..2.0, xi in 1.0f64..3.0) {
        let cacc = PathCacc { spacing_m: 5.0, c1, omega_n: omega, xi };
        let (a1, a2, a3, a4, a5) = cacc.gains();
        prop_assert!((a1 + a2 - 1.0).abs() < 1e-12, "feedforward weights sum to 1");
        prop_assert!((a5 + omega * omega).abs() < 1e-12);
        prop_assert!(a3 < 0.0, "damping gains are negative");
        prop_assert!(a4 < 0.0);
    }

    /// PATH CACC is at rest exactly at the design point.
    #[test]
    fn path_cacc_equilibrium(speed in 1.0f64..40.0, spacing in 2.0f64..20.0) {
        let mut cacc = PathCacc { spacing_m: spacing, ..PathCacc::default() };
        let input = ControllerInput {
            ego: EgoState { speed_mps: speed, accel_mps2: 0.0 },
            radar: RadarReading { gap_m: spacing, closing_speed_mps: 0.0 },
            radio: RadioData {
                pred_speed_mps: speed,
                pred_accel_mps2: 0.0,
                leader_speed_mps: speed,
                leader_accel_mps2: 0.0,
            },
            dt_s: 0.01,
        };
        prop_assert!(cacc.desired_accel(&input).abs() < 1e-12);
    }

    /// ACC never reads the (attackable) radio inputs.
    #[test]
    fn acc_is_radio_independent(input in arb_input(), fake in -100.0f64..100.0) {
        let mut acc = Acc::default();
        let base = acc.desired_accel(&input);
        let mut perturbed = input;
        perturbed.radio = RadioData {
            pred_speed_mps: fake,
            pred_accel_mps2: -fake,
            leader_speed_mps: fake * 2.0,
            leader_accel_mps2: fake / 2.0,
        };
        prop_assert_eq!(acc.desired_accel(&perturbed), base);
    }

    /// The sinusoidal maneuver is periodic and bounded.
    #[test]
    fn sinusoid_periodic(t in 2.0f64..100.0) {
        let m = Sinusoidal::paper_default();
        let period = 1.0 / m.freq_hz;
        let v1 = m.desired_speed(SimTime::from_secs_f64(t));
        let v2 = m.desired_speed(SimTime::from_secs_f64(t + period));
        prop_assert!((v1 - v2).abs() < 1e-9);
        prop_assert!((v1 - m.base_mps).abs() <= m.amplitude_mps + 1e-9);
    }

    /// The monitor passes exactly when no hazard exists (unlatched).
    #[test]
    fn monitor_decision_matches_definition(gap in 0.1f64..100.0, closing in -10.0f64..10.0) {
        let cfg = SafetyMonitorConfig::default();
        let mut m = SafetyMonitor::new(cfg);
        let radar = RadarReading { gap_m: gap, closing_speed_mps: closing };
        let ttc = if closing > 1e-6 { gap / closing } else { f64::INFINITY };
        let hazard = ttc < cfg.ttc_threshold_s || gap < cfg.min_gap_m;
        match m.check(Some(&radar)) {
            MonitorDecision::Pass => prop_assert!(!hazard),
            MonitorDecision::EmergencyBrake(b) => {
                prop_assert!(hazard);
                prop_assert_eq!(b, -cfg.brake_mps2);
            }
        }
    }

    /// Platoon initial positions always realise the requested spacing.
    #[test]
    fn platoon_spacing_exact(n in 1usize..10, spacing in 1.0f64..30.0, len in 3.0f64..12.0) {
        let spec = PlatoonSpec {
            members: (1..=n as u32).collect(),
            spacing_m: spacing,
            leader_pos_m: 1000.0,
            ..PlatoonSpec::paper_default()
        };
        let pos = spec.initial_positions(len);
        prop_assert_eq!(pos.len(), n);
        for w in pos.windows(2) {
            let gap = (w[0].1 - len) - w[1].1;
            prop_assert!((gap - spacing).abs() < 1e-9);
        }
    }
}
