//! Platooning beacons — the V2V messages the paper's attacks target.
//!
//! Every platoon member broadcasts its kinematic state at the configured
//! beaconing rate (0.1 s in the paper). The beacon is serialized into the
//! payload of a WAVE Short Message, so falsification attack models can also
//! rewrite it in flight.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

/// Kinematic state broadcast by a platoon member.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatoonBeacon {
    /// Sender's vehicle id (same numbering as the traffic simulation).
    pub vehicle: u32,
    /// Front-bumper position along the road, metres.
    pub pos_m: f64,
    /// Speed, m/s.
    pub speed_mps: f64,
    /// Realised acceleration, m/s².
    pub accel_mps2: f64,
    /// Time the values were sampled.
    pub sampled: SimTime,
}

impl PlatoonBeacon {
    /// Serialized size in bytes.
    pub const ENCODED_LEN: usize = 4 + 8 * 3 + 8;

    /// Serializes the beacon for transmission.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::ENCODED_LEN);
        buf.put_u32(self.vehicle);
        buf.put_f64(self.pos_m);
        buf.put_f64(self.speed_mps);
        buf.put_f64(self.accel_mps2);
        buf.put_i64(self.sampled.as_nanos());
        buf.freeze()
    }

    /// Deserializes a beacon.
    ///
    /// # Errors
    ///
    /// Returns a description if the buffer is truncated.
    pub fn decode(mut buf: Bytes) -> Result<PlatoonBeacon, String> {
        if buf.remaining() < Self::ENCODED_LEN {
            return Err(format!(
                "beacon truncated: {} of {} bytes",
                buf.remaining(),
                Self::ENCODED_LEN
            ));
        }
        Ok(PlatoonBeacon {
            vehicle: buf.get_u32(),
            pos_m: buf.get_f64(),
            speed_mps: buf.get_f64(),
            accel_mps2: buf.get_f64(),
            sampled: SimTime::from_nanos(buf.get_i64()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon() -> PlatoonBeacon {
        PlatoonBeacon {
            vehicle: 2,
            pos_m: 123.456,
            speed_mps: 27.78,
            accel_mps2: -1.5,
            sampled: SimTime::from_millis(17_300),
        }
    }

    #[test]
    fn round_trip() {
        let b = beacon();
        assert_eq!(PlatoonBeacon::decode(b.encode()).unwrap(), b);
    }

    #[test]
    fn encoded_len_is_exact() {
        assert_eq!(beacon().encode().len(), PlatoonBeacon::ENCODED_LEN);
    }

    #[test]
    fn truncation_detected() {
        let enc = beacon().encode();
        let cut = enc.slice(0..enc.len() - 1);
        assert!(PlatoonBeacon::decode(cut)
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn negative_values_survive() {
        let b = PlatoonBeacon {
            accel_mps2: -9.0,
            pos_m: -1.0,
            ..beacon()
        };
        assert_eq!(PlatoonBeacon::decode(b.encode()).unwrap(), b);
    }
}
