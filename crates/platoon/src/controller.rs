//! Longitudinal platooning controllers, after Plexe (Segata et al. 2014).
//!
//! Four controllers are provided:
//!
//! - [`PathCacc`] — the constant-spacing CACC of Rajamani used as Plexe's
//!   default `CACC` and referenced by the paper's scenario ("CACC
//!   (cooperative adaptive cruise control) as a controller"): it fuses
//!   radar measurements with **radio data from the predecessor and the
//!   platoon leader**, which is what makes it sensitive to V2V attacks;
//! - [`MsCacc`] — the gap-regulation CACC of Milanés & Shladover (the
//!   paper's reference \[30\]);
//! - [`Ploeg`] — the time-gap CACC of Ploeg et al. with predecessor
//!   acceleration feedforward;
//! - [`Acc`] — a radar-only adaptive cruise control baseline that ignores
//!   V2V data entirely (the resilient comparison point used by related
//!   work).
//!
//! Controllers are pure functions of their inputs plus (for Ploeg) a small
//! internal state; beacon bookkeeping lives in [`crate::app`].

use serde::{Deserialize, Serialize};

/// Ego vehicle state as seen by a controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoState {
    /// Ego speed, m/s.
    pub speed_mps: f64,
    /// Ego realised acceleration, m/s².
    pub accel_mps2: f64,
}

/// Radar measurement of the vehicle ahead (attack-free, on-board sensor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadarReading {
    /// Bumper-to-bumper gap, metres.
    pub gap_m: f64,
    /// Relative speed `ego - predecessor`, m/s (positive = closing).
    pub closing_speed_mps: f64,
}

/// Data received over V2V radio (the attack surface).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioData {
    /// Predecessor speed, m/s.
    pub pred_speed_mps: f64,
    /// Predecessor acceleration, m/s².
    pub pred_accel_mps2: f64,
    /// Leader speed, m/s.
    pub leader_speed_mps: f64,
    /// Leader acceleration, m/s².
    pub leader_accel_mps2: f64,
}

/// Everything a follower controller may consume in one control step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerInput {
    /// Ego state (on-board).
    pub ego: EgoState,
    /// Radar measurement (on-board, attack-free).
    pub radar: RadarReading,
    /// Latest V2V knowledge. With no security mechanisms the values are
    /// simply the last decoded beacons — stale or forged under attack.
    pub radio: RadioData,
    /// Control step, seconds.
    pub dt_s: f64,
}

/// A longitudinal platooning controller for follower vehicles.
pub trait LongitudinalController: std::fmt::Debug + Send + Sync {
    /// Desired acceleration for this step, m/s² (clamped by dynamics).
    fn desired_accel(&mut self, input: &ControllerInput) -> f64;

    /// Controller name for reports.
    fn name(&self) -> &'static str;

    /// Resets internal state (used when re-running scenarios).
    fn reset(&mut self) {}

    /// Clones the controller — including its internal state — into a new
    /// box (needed to snapshot a running follower application).
    fn clone_box(&self) -> Box<dyn LongitudinalController>;
}

impl Clone for Box<dyn LongitudinalController> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Constant-spacing CACC (Rajamani), Plexe's `CACC` controller.
///
/// `a = α₁·a_pred + α₂·a_lead + α₃·ε̇ + α₄·(v − v_lead) + α₅·ε` with
/// `ε = gap_des − gap` (positive when too close), `ε̇` the closing speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathCacc {
    /// Desired constant bumper-to-bumper spacing, metres (Plexe default 5).
    pub spacing_m: f64,
    /// Weight of leader vs predecessor feedforward, `C1` (default 0.5).
    pub c1: f64,
    /// Controller bandwidth ω_n, rad/s (Plexe default 0.2).
    pub omega_n: f64,
    /// Damping ratio ξ (Plexe default 1.0).
    pub xi: f64,
}

impl Default for PathCacc {
    fn default() -> Self {
        PathCacc {
            spacing_m: 5.0,
            c1: 0.5,
            omega_n: 0.2,
            xi: 1.0,
        }
    }
}

impl PathCacc {
    /// The controller gains `(α1, α2, α3, α4, α5)`.
    pub fn gains(&self) -> (f64, f64, f64, f64, f64) {
        let root = (self.xi * self.xi - 1.0).max(0.0).sqrt();
        let alpha1 = 1.0 - self.c1;
        let alpha2 = self.c1;
        let alpha3 = -(2.0 * self.xi - self.c1 * (self.xi + root)) * self.omega_n;
        let alpha4 = -self.c1 * (self.xi + root) * self.omega_n;
        let alpha5 = -self.omega_n * self.omega_n;
        (alpha1, alpha2, alpha3, alpha4, alpha5)
    }
}

impl LongitudinalController for PathCacc {
    fn desired_accel(&mut self, input: &ControllerInput) -> f64 {
        let (a1, a2, a3, a4, a5) = self.gains();
        // ε as in Rajamani: positive when the gap is smaller than desired.
        let epsilon = self.spacing_m - input.radar.gap_m;
        let epsilon_dot = input.radar.closing_speed_mps;
        a1 * input.radio.pred_accel_mps2
            + a2 * input.radio.leader_accel_mps2
            + a3 * epsilon_dot
            + a4 * (input.ego.speed_mps - input.radio.leader_speed_mps)
            + a5 * epsilon
    }

    fn name(&self) -> &'static str {
        "PathCACC"
    }

    fn clone_box(&self) -> Box<dyn LongitudinalController> {
        Box::new(*self)
    }
}

/// Gap-regulation CACC of Milanés & Shladover (paper reference \[30\]).
///
/// Velocity-based: the speed setpoint integrates a PD law on the time-gap
/// error, using the **radio** predecessor speed for the derivative term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MsCacc {
    /// Desired time gap, seconds (0.6 s in the original experiments).
    pub time_gap_s: f64,
    /// Standstill spacing, metres.
    pub standstill_m: f64,
    /// Proportional gain on the gap error.
    pub kp: f64,
    /// Derivative gain on the gap-error rate.
    pub kd: f64,
    /// Internal speed setpoint, m/s (initialised from the first input).
    setpoint_mps: Option<f64>,
}

impl Default for MsCacc {
    fn default() -> Self {
        MsCacc {
            time_gap_s: 0.6,
            standstill_m: 2.0,
            kp: 0.45,
            kd: 0.25,
            setpoint_mps: None,
        }
    }
}

impl LongitudinalController for MsCacc {
    fn desired_accel(&mut self, input: &ControllerInput) -> f64 {
        let v = input.ego.speed_mps;
        let setpoint = self.setpoint_mps.get_or_insert(v);
        let gap_err = input.radar.gap_m - self.standstill_m - self.time_gap_s * v;
        let gap_err_rate = input.radio.pred_speed_mps - v - self.time_gap_s * input.ego.accel_mps2;
        *setpoint += (self.kp * gap_err + self.kd * gap_err_rate) * input.dt_s;
        // Convert the speed setpoint to an acceleration command with a
        // proportional inner loop (Plexe uses the engine's own loop).
        (*setpoint - v) / input.dt_s.max(1e-3) * 0.1
    }

    fn name(&self) -> &'static str {
        "MS-CACC"
    }

    fn reset(&mut self) {
        self.setpoint_mps = None;
    }

    fn clone_box(&self) -> Box<dyn LongitudinalController> {
        Box::new(*self)
    }
}

/// Time-gap CACC of Ploeg et al. with predecessor acceleration feedforward
/// over the radio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ploeg {
    /// Desired time gap `h`, seconds (Plexe default 0.5).
    pub time_gap_s: f64,
    /// Standstill spacing, metres.
    pub standstill_m: f64,
    /// Position-error gain.
    pub kp: f64,
    /// Speed-error gain.
    pub kd: f64,
    /// Internal desired-acceleration state (the controller is dynamic).
    u_mps2: f64,
}

impl Default for Ploeg {
    fn default() -> Self {
        Ploeg {
            time_gap_s: 0.5,
            standstill_m: 2.0,
            kp: 0.2,
            kd: 0.7,
            u_mps2: 0.0,
        }
    }
}

impl LongitudinalController for Ploeg {
    fn desired_accel(&mut self, input: &ControllerInput) -> f64 {
        let e = input.radar.gap_m - self.standstill_m - self.time_gap_s * input.ego.speed_mps;
        let e_dot = -input.radar.closing_speed_mps - self.time_gap_s * input.ego.accel_mps2;
        // ḣu = (1/h)(−u + kp·e + kd·ė + a_pred)
        let u_dot = (self.kp * e + self.kd * e_dot + input.radio.pred_accel_mps2 - self.u_mps2)
            / self.time_gap_s;
        self.u_mps2 += u_dot * input.dt_s;
        self.u_mps2
    }

    fn name(&self) -> &'static str {
        "Ploeg"
    }

    fn reset(&mut self) {
        self.u_mps2 = 0.0;
    }

    fn clone_box(&self) -> Box<dyn LongitudinalController> {
        Box::new(*self)
    }
}

/// Radar-only adaptive cruise control (no V2V inputs at all).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Acc {
    /// Desired time gap, seconds.
    pub time_gap_s: f64,
    /// Standstill spacing, metres.
    pub standstill_m: f64,
    /// Gap-error gain (1/s²).
    pub k1: f64,
    /// Closing-speed gain (1/s).
    pub k2: f64,
}

impl Default for Acc {
    fn default() -> Self {
        Acc {
            time_gap_s: 1.2,
            standstill_m: 2.0,
            k1: 0.23,
            k2: 0.74,
        }
    }
}

impl LongitudinalController for Acc {
    fn desired_accel(&mut self, input: &ControllerInput) -> f64 {
        let desired_gap = self.standstill_m + self.time_gap_s * input.ego.speed_mps;
        self.k1 * (input.radar.gap_m - desired_gap) - self.k2 * input.radar.closing_speed_mps
    }

    fn name(&self) -> &'static str {
        "ACC"
    }

    fn clone_box(&self) -> Box<dyn LongitudinalController> {
        Box::new(*self)
    }
}

/// Selects a controller by name — the paper's `vehicleFeatures.controller`
/// configuration knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Constant-spacing CACC (Plexe default).
    #[default]
    PathCacc,
    /// Milanés–Shladover CACC.
    MsCacc,
    /// Ploeg CACC.
    Ploeg,
    /// Radar-only ACC.
    Acc,
}

impl ControllerKind {
    /// Instantiates the controller with its default parameters.
    pub fn build(self) -> Box<dyn LongitudinalController> {
        match self {
            ControllerKind::PathCacc => Box::new(PathCacc::default()),
            ControllerKind::MsCacc => Box::new(MsCacc::default()),
            ControllerKind::Ploeg => Box::new(Ploeg::default()),
            ControllerKind::Acc => Box::new(Acc::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_input(gap: f64) -> ControllerInput {
        ControllerInput {
            ego: EgoState {
                speed_mps: 27.78,
                accel_mps2: 0.0,
            },
            radar: RadarReading {
                gap_m: gap,
                closing_speed_mps: 0.0,
            },
            radio: RadioData {
                pred_speed_mps: 27.78,
                pred_accel_mps2: 0.0,
                leader_speed_mps: 27.78,
                leader_accel_mps2: 0.0,
            },
            dt_s: 0.01,
        }
    }

    #[test]
    fn path_cacc_gains_match_plexe_defaults() {
        let c = PathCacc::default();
        let (a1, a2, a3, a4, a5) = c.gains();
        assert_eq!(a1, 0.5);
        assert_eq!(a2, 0.5);
        assert!((a3 - (-0.3)).abs() < 1e-12);
        assert!((a4 - (-0.1)).abs() < 1e-12);
        assert!((a5 - (-0.04)).abs() < 1e-12);
    }

    #[test]
    fn path_cacc_steady_state_is_zero() {
        let mut c = PathCacc::default();
        let a = c.desired_accel(&steady_input(5.0));
        assert!(a.abs() < 1e-12, "at design spacing and equal speeds: {a}");
    }

    #[test]
    fn path_cacc_brakes_when_too_close() {
        let mut c = PathCacc::default();
        let a = c.desired_accel(&steady_input(3.0));
        assert!(a < 0.0, "2 m too close must brake: {a}");
    }

    #[test]
    fn path_cacc_follows_leader_feedforward() {
        let mut c = PathCacc::default();
        let mut input = steady_input(5.0);
        input.radio.leader_accel_mps2 = 2.0;
        input.radio.pred_accel_mps2 = 2.0;
        let a = c.desired_accel(&input);
        assert!((a - 2.0).abs() < 1e-12, "pure feedforward: {a}");
    }

    #[test]
    fn path_cacc_reacts_to_closing_speed() {
        let mut c = PathCacc::default();
        let mut input = steady_input(5.0);
        input.radar.closing_speed_mps = 2.0;
        assert!(c.desired_accel(&input) < 0.0);
    }

    #[test]
    fn stale_feedforward_is_the_attack_mechanism() {
        // Leader is braking hard, but the radio snapshot still says +1.5:
        // the controller accelerates into the gap. This is the paper's
        // §IV-C.1 explanation of why attacks during high acceleration
        // phases are severe.
        let mut c = PathCacc::default();
        let mut input = steady_input(5.0);
        input.radio.leader_accel_mps2 = 1.5; // stale
        input.radio.pred_accel_mps2 = 1.5; // stale
        let a = c.desired_accel(&input);
        assert!(a > 1.0, "stale data causes acceleration: {a}");
    }

    #[test]
    fn ms_cacc_regulates_time_gap() {
        let mut c = MsCacc::default();
        // 27.78 m/s * 0.6 s + 2 m standstill = 18.67 m desired gap.
        let tight = c.desired_accel(&steady_input(10.0));
        c.reset();
        let wide = c.desired_accel(&steady_input(30.0));
        assert!(tight < 0.0, "too close: {tight}");
        assert!(wide > 0.0, "too far: {wide}");
    }

    #[test]
    fn ms_cacc_reset_clears_setpoint() {
        let mut c = MsCacc::default();
        c.desired_accel(&steady_input(10.0));
        c.reset();
        assert_eq!(c.setpoint_mps, None);
    }

    #[test]
    fn ploeg_converges_to_time_gap() {
        let mut c = Ploeg::default();
        // Simulate a crude closed loop: speed adjusts with commanded accel.
        let mut speed: f64 = 20.0;
        let mut gap: f64 = 30.0;
        let pred_speed = 20.0;
        let dt = 0.01;
        for _ in 0..20_000 {
            let input = ControllerInput {
                ego: EgoState {
                    speed_mps: speed,
                    accel_mps2: 0.0,
                },
                radar: RadarReading {
                    gap_m: gap,
                    closing_speed_mps: speed - pred_speed,
                },
                radio: RadioData {
                    pred_speed_mps: pred_speed,
                    pred_accel_mps2: 0.0,
                    leader_speed_mps: pred_speed,
                    leader_accel_mps2: 0.0,
                },
                dt_s: dt,
            };
            let a = c.desired_accel(&input).clamp(-6.0, 2.5);
            speed = (speed + a * dt).max(0.0);
            gap += (pred_speed - speed) * dt;
        }
        let desired = 2.0 + 0.5 * speed;
        assert!((gap - desired).abs() < 0.5, "gap {gap} desired {desired}");
        assert!((speed - pred_speed).abs() < 0.1, "speed {speed}");
    }

    #[test]
    fn acc_ignores_radio() {
        let mut c = Acc::default();
        let mut input = steady_input(2.0 + 1.2 * 27.78);
        let base = c.desired_accel(&input);
        input.radio.leader_accel_mps2 = 99.0;
        input.radio.pred_accel_mps2 = -99.0;
        assert_eq!(
            c.desired_accel(&input),
            base,
            "ACC must not read radio data"
        );
    }

    #[test]
    fn acc_steady_at_design_gap() {
        let mut c = Acc::default();
        let input = steady_input(2.0 + 1.2 * 27.78);
        assert!(c.desired_accel(&input).abs() < 1e-9);
    }

    #[test]
    fn kind_builds_all_controllers() {
        for (kind, name) in [
            (ControllerKind::PathCacc, "PathCACC"),
            (ControllerKind::MsCacc, "MS-CACC"),
            (ControllerKind::Ploeg, "Ploeg"),
            (ControllerKind::Acc, "ACC"),
        ] {
            assert_eq!(kind.build().name(), name);
        }
    }
}
