//! # comfase-platoon — platooning models (Plexe substrate)
//!
//! The Plexe-veins substrate of ComFASE-RS: everything needed to run the
//! paper's system under test, a CACC platoon that exchanges kinematic
//! beacons over V2V radio.
//!
//! - [`beacon`] — the platooning beacon broadcast at 10 Hz, serialized into
//!   WSM payloads (and therefore attackable in flight);
//! - [`controller`] — longitudinal controllers: the constant-spacing PATH
//!   CACC (Plexe's default, used in the paper's scenario), the
//!   Milanés–Shladover CACC (paper reference \[30\]), Ploeg's CACC, and a
//!   radar-only ACC baseline;
//! - [`maneuver`] — leader speed profiles, including the paper's sinusoidal
//!   maneuver with its 5 s driving cycle;
//! - [`app`] — the per-vehicle platooning application: beacon bookkeeping
//!   (no staleness or security checks, as in the paper) and control-step
//!   evaluation;
//! - [`platoon`] — platoon composition, including the paper's 4-vehicle
//!   scenario ([`platoon::PlatoonSpec::paper_default`]).
//!
//! # Example
//!
//! ```
//! use comfase_platoon::app::PlatoonApp;
//! use comfase_platoon::controller::{ControllerKind, EgoState, RadarReading};
//! use comfase_des::time::SimTime;
//!
//! // Vehicle 2 follows the leader (vehicle 1) with the PATH CACC.
//! let mut app = PlatoonApp::follower(2, 1, 1, ControllerKind::PathCacc);
//! let accel = app.control(
//!     SimTime::ZERO,
//!     EgoState { speed_mps: 27.78, accel_mps2: 0.0 },
//!     Some(RadarReading { gap_m: 5.0, closing_speed_mps: 0.0 }),
//!     0.01,
//! );
//! assert!(accel.abs() < 1e-9); // settled platoon
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod beacon;
pub mod controller;
pub mod maneuver;
pub mod monitor;
pub mod platoon;

pub use app::PlatoonApp;
pub use beacon::PlatoonBeacon;
pub use controller::{ControllerKind, LongitudinalController};
pub use maneuver::{Braking, ConstantSpeed, Maneuver, Sinusoidal};
pub use monitor::{MonitorDecision, SafetyMonitor, SafetyMonitorConfig};
pub use platoon::PlatoonSpec;
