//! Platoon composition and the paper's demonstration scenario.

use serde::{Deserialize, Serialize};

use crate::controller::ControllerKind;

/// Static description of a platoon — enough to place the vehicles and wire
/// up leader/predecessor relationships.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatoonSpec {
    /// Vehicle ids front to back. The paper numbers them 1..=4 with
    /// vehicle 1 the leader and vehicle 2 (directly behind the leader) the
    /// attack target.
    pub members: Vec<u32>,
    /// Desired bumper-to-bumper spacing, metres (Plexe default 5).
    pub spacing_m: f64,
    /// Initial cruise speed, m/s.
    pub initial_speed_mps: f64,
    /// Front-bumper position of the leader at t = 0, metres.
    pub leader_pos_m: f64,
    /// Lane the platoon drives in.
    pub lane: u8,
    /// Follower controller.
    pub controller: ControllerKind,
    /// Optional beacon staleness failsafe for followers, seconds: when the
    /// newest V2V data is older than this, the follower degrades to
    /// radar-only control. `None` reproduces the paper's unprotected
    /// system (§III-C).
    pub staleness_timeout_s: Option<f64>,
}

impl PlatoonSpec {
    /// The paper's 4-vehicle platoon (§IV-A.1) with PATH CACC followers at
    /// 5 m spacing, cruising at 100 km/h.
    pub fn paper_default() -> Self {
        PlatoonSpec {
            members: vec![1, 2, 3, 4],
            spacing_m: 5.0,
            initial_speed_mps: 27.78,
            leader_pos_m: 500.0,
            lane: 0,
            controller: ControllerKind::PathCacc,
            staleness_timeout_s: None,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the platoon has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The leader's vehicle id.
    ///
    /// # Panics
    ///
    /// Panics if the platoon is empty.
    pub fn leader(&self) -> u32 {
        *self.members.first().expect("platoon must not be empty")
    }

    /// The predecessor of `vehicle`, or `None` for the leader / unknown ids.
    pub fn predecessor_of(&self, vehicle: u32) -> Option<u32> {
        let idx = self.members.iter().position(|&m| m == vehicle)?;
        if idx == 0 {
            None
        } else {
            Some(self.members[idx - 1])
        }
    }

    /// Zero-based index of a member (0 = leader).
    pub fn index_of(&self, vehicle: u32) -> Option<usize> {
        self.members.iter().position(|&m| m == vehicle)
    }

    /// Initial front-bumper position of each member given a vehicle length:
    /// the leader at `leader_pos_m`, every follower `spacing + length`
    /// behind the one ahead.
    pub fn initial_positions(&self, vehicle_length_m: f64) -> Vec<(u32, f64)> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let pos = self.leader_pos_m - i as f64 * (self.spacing_m + vehicle_length_m);
                (id, pos)
            })
            .collect()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.members.is_empty() {
            return Err("platoon must have at least one member".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for &m in &self.members {
            if !seen.insert(m) {
                return Err(format!("duplicate member id {m}"));
            }
        }
        if self.spacing_m <= 0.0 {
            return Err(format!("spacing must be positive, got {}", self.spacing_m));
        }
        if self.initial_speed_mps < 0.0 {
            return Err(format!(
                "initial speed cannot be negative, got {}",
                self.initial_speed_mps
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iv() {
        let p = PlatoonSpec::paper_default();
        assert_eq!(p.members, vec![1, 2, 3, 4]);
        assert_eq!(p.spacing_m, 5.0);
        assert_eq!(p.controller, ControllerKind::PathCacc);
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn relationships() {
        let p = PlatoonSpec::paper_default();
        assert_eq!(p.leader(), 1);
        assert_eq!(p.predecessor_of(1), None);
        assert_eq!(p.predecessor_of(2), Some(1));
        assert_eq!(p.predecessor_of(4), Some(3));
        assert_eq!(p.predecessor_of(9), None);
        assert_eq!(p.index_of(3), Some(2));
        assert_eq!(p.index_of(9), None);
    }

    #[test]
    fn initial_positions_respect_spacing() {
        let p = PlatoonSpec::paper_default();
        let pos = p.initial_positions(4.0);
        assert_eq!(pos[0], (1, 500.0));
        // follower front = leader front - (5 m gap + 4 m leader body)
        assert_eq!(pos[1], (2, 491.0));
        assert_eq!(pos[2], (3, 482.0));
        assert_eq!(pos[3], (4, 473.0));
        // Resulting bumper-to-bumper gaps are exactly the spacing.
        for w in pos.windows(2) {
            let gap = (w[0].1 - 4.0) - w[1].1;
            assert!((gap - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_catches_problems() {
        let mut p = PlatoonSpec::paper_default();
        p.members = vec![];
        assert!(p.validate().is_err());
        p = PlatoonSpec::paper_default();
        p.members = vec![1, 2, 2];
        assert!(p.validate().unwrap_err().contains("duplicate"));
        p = PlatoonSpec::paper_default();
        p.spacing_m = 0.0;
        assert!(p.validate().is_err());
        p = PlatoonSpec::paper_default();
        p.initial_speed_mps = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn leader_of_empty_panics() {
        let p = PlatoonSpec {
            members: vec![],
            ..PlatoonSpec::paper_default()
        };
        p.leader();
    }
}
