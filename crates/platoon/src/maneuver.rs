//! Leader maneuvers — the paper's `scenarioManeuver` configuration.
//!
//! The platoon leader tracks a time-varying desired speed produced by a
//! maneuver; followers track the leader through their controllers. The
//! paper's demonstration uses a **sinusoidal** maneuver ("the vehicles
//! accelerate and decelerate in a sinusoidal fashion") with a 5 s driving
//! cycle (attack start times 17.0–21.8 s span "one complete platooning
//! cycle").

use serde::{Deserialize, Serialize};

use comfase_des::time::SimTime;

/// A leader speed profile.
pub trait Maneuver: std::fmt::Debug + Send + Sync {
    /// Desired leader speed at `t`, m/s.
    fn desired_speed(&self, t: SimTime) -> f64;

    /// Desired leader acceleration at `t` (feedforward), m/s².
    fn desired_accel(&self, t: SimTime) -> f64;

    /// Maneuver name for reports.
    fn name(&self) -> &'static str;

    /// Clones the maneuver into a new box (needed to snapshot a running
    /// leader application).
    fn clone_box(&self) -> Box<dyn Maneuver>;
}

impl Clone for Box<dyn Maneuver> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Constant cruise speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantSpeed {
    /// Cruise speed, m/s.
    pub speed_mps: f64,
}

impl Maneuver for ConstantSpeed {
    fn desired_speed(&self, _t: SimTime) -> f64 {
        self.speed_mps
    }

    fn desired_accel(&self, _t: SimTime) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "ConstantSpeed"
    }

    fn clone_box(&self) -> Box<dyn Maneuver> {
        Box::new(*self)
    }
}

/// Sinusoidal speed oscillation around a base speed (the paper's scenario).
///
/// `v(t) = base + A·sin(2πf·(t − start))` for `t >= start`, constant `base`
/// before. With the defaults below the platoon's driving cycle boundaries
/// land on 17.0 s, 22.0 s, … matching the paper's attack start window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sinusoidal {
    /// Base speed, m/s.
    pub base_mps: f64,
    /// Oscillation amplitude, m/s.
    pub amplitude_mps: f64,
    /// Oscillation frequency, Hz.
    pub freq_hz: f64,
    /// Oscillation onset.
    pub start: SimTime,
}

impl Sinusoidal {
    /// The paper-calibrated sinusoidal maneuver: 100 km/h base speed,
    /// 0.2 Hz (5 s cycle) starting at t = 2 s. The amplitude is calibrated
    /// so the **realised** golden-run maximum deceleration lands near the
    /// 1.53 m/s² the paper reports: the feedforward peak is A·ω ≈ 1.19,
    /// and the followers' actuation lag overshoots by ~29%, giving ≈ 1.53.
    pub fn paper_default() -> Self {
        Sinusoidal {
            base_mps: 27.78,
            amplitude_mps: 0.95,
            freq_hz: 0.2,
            start: SimTime::from_secs(2),
        }
    }

    fn omega(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.freq_hz
    }
}

impl Maneuver for Sinusoidal {
    fn desired_speed(&self, t: SimTime) -> f64 {
        if t < self.start {
            return self.base_mps;
        }
        let dt = (t - self.start).as_secs_f64();
        self.base_mps + self.amplitude_mps * (self.omega() * dt).sin()
    }

    fn desired_accel(&self, t: SimTime) -> f64 {
        if t < self.start {
            return 0.0;
        }
        let dt = (t - self.start).as_secs_f64();
        self.amplitude_mps * self.omega() * (self.omega() * dt).cos()
    }

    fn name(&self) -> &'static str {
        "Sinusoidal"
    }

    fn clone_box(&self) -> Box<dyn Maneuver> {
        Box::new(*self)
    }
}

/// Cruise, then brake hard at a fixed time — an emergency-braking scenario
/// for tests and examples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Braking {
    /// Cruise speed before braking, m/s.
    pub cruise_mps: f64,
    /// When braking begins.
    pub brake_at: SimTime,
    /// Braking strength, m/s² (positive number).
    pub decel_mps2: f64,
}

impl Maneuver for Braking {
    fn desired_speed(&self, t: SimTime) -> f64 {
        if t < self.brake_at {
            self.cruise_mps
        } else {
            (self.cruise_mps - self.decel_mps2 * (t - self.brake_at).as_secs_f64()).max(0.0)
        }
    }

    fn desired_accel(&self, t: SimTime) -> f64 {
        if t < self.brake_at || self.desired_speed(t) <= 0.0 {
            0.0
        } else {
            -self.decel_mps2
        }
    }

    fn name(&self) -> &'static str {
        "Braking"
    }

    fn clone_box(&self) -> Box<dyn Maneuver> {
        Box::new(*self)
    }
}

/// The leader's cruise controller: proportional speed tracking with the
/// maneuver's acceleration feedforward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaderControl {
    /// Proportional gain on the speed error, 1/s.
    pub kp: f64,
}

impl Default for LeaderControl {
    fn default() -> Self {
        LeaderControl { kp: 1.0 }
    }
}

impl LeaderControl {
    /// Commanded acceleration for the leader at `t` given its current speed.
    pub fn accel(&self, maneuver: &dyn Maneuver, t: SimTime, speed_mps: f64) -> f64 {
        maneuver.desired_accel(t) + self.kp * (maneuver.desired_speed(t) - speed_mps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_speed_is_flat() {
        let m = ConstantSpeed { speed_mps: 25.0 };
        assert_eq!(m.desired_speed(SimTime::ZERO), 25.0);
        assert_eq!(m.desired_speed(SimTime::from_secs(100)), 25.0);
        assert_eq!(m.desired_accel(SimTime::from_secs(3)), 0.0);
    }

    #[test]
    fn sinusoidal_cycle_boundaries_match_paper_window() {
        let m = Sinusoidal::paper_default();
        // t = 17 s is 15 s = 3 full cycles after onset: speed at base,
        // acceleration at its maximum (start of a new cycle).
        let v17 = m.desired_speed(SimTime::from_secs(17));
        let a17 = m.desired_accel(SimTime::from_secs(17));
        assert!((v17 - m.base_mps).abs() < 1e-9);
        assert!((a17 - m.amplitude_mps * m.omega()).abs() < 1e-9);
        // One full cycle later the profile repeats.
        let v22 = m.desired_speed(SimTime::from_secs(22));
        assert!((v22 - v17).abs() < 1e-9);
    }

    #[test]
    fn sinusoidal_peak_accel_matches_golden_run_target() {
        let m = Sinusoidal::paper_default();
        // Feedforward peak A·ω ~ 1.19 m/s²; with the ~29% follower
        // overshoot the realised golden-run maximum lands near the paper's
        // 1.53 m/s² (asserted end-to-end in the core crate's calibration).
        let peak = m.amplitude_mps * m.omega();
        assert!((1.1..=1.3).contains(&peak), "feedforward peak accel {peak}");
    }

    #[test]
    fn sinusoidal_constant_before_onset() {
        let m = Sinusoidal::paper_default();
        assert_eq!(m.desired_speed(SimTime::from_secs(1)), m.base_mps);
        assert_eq!(m.desired_accel(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn sinusoidal_zero_accel_phase_exists_in_cycle() {
        // The paper observes a low-severity window where acceleration is
        // near zero; that's a quarter and three quarters into the cycle.
        let m = Sinusoidal::paper_default();
        let quarter = SimTime::from_secs_f64(17.0 + 1.25);
        assert!(m.desired_accel(quarter).abs() < 1e-9);
    }

    #[test]
    fn braking_profile() {
        let m = Braking {
            cruise_mps: 30.0,
            brake_at: SimTime::from_secs(10),
            decel_mps2: 6.0,
        };
        assert_eq!(m.desired_speed(SimTime::from_secs(9)), 30.0);
        assert_eq!(m.desired_speed(SimTime::from_secs(12)), 18.0);
        assert_eq!(m.desired_speed(SimTime::from_secs(100)), 0.0);
        assert_eq!(m.desired_accel(SimTime::from_secs(100)), 0.0);
        assert_eq!(m.desired_accel(SimTime::from_secs(11)), -6.0);
    }

    #[test]
    fn leader_control_tracks_desired_speed() {
        let ctl = LeaderControl::default();
        let m = ConstantSpeed { speed_mps: 30.0 };
        // Below target -> accelerate; above -> brake.
        assert!(ctl.accel(&m, SimTime::ZERO, 25.0) > 0.0);
        assert!(ctl.accel(&m, SimTime::ZERO, 35.0) < 0.0);
        assert_eq!(ctl.accel(&m, SimTime::ZERO, 30.0), 0.0);
    }

    #[test]
    fn leader_control_uses_feedforward() {
        let ctl = LeaderControl::default();
        let m = Sinusoidal::paper_default();
        let t = SimTime::from_secs(17);
        // At the cycle start the speed matches base, so the command is
        // exactly the feedforward.
        let a = ctl.accel(&m, t, m.base_mps);
        assert!((a - m.desired_accel(t)).abs() < 1e-9);
    }
}
