//! On-board safety monitor — the redundancy mechanism the paper names as
//! future work ("introduction of sensor models in our simulation
//! environment that monitors the distance between vehicles", §IV-C.3).
//!
//! The monitor watches the (attack-free) radar channel and overrides the
//! platooning controller with an emergency braking command when the
//! predicted time-to-collision or the raw gap falls below its thresholds.
//! It is deliberately simple — an AEB-style last line of defence — so that
//! ablation experiments can quantify how much of the paper's attack damage
//! such a mechanism absorbs.

use serde::{Deserialize, Serialize};

use crate::controller::RadarReading;

/// Configuration of the safety monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyMonitorConfig {
    /// Intervene when time-to-collision drops below this, seconds.
    pub ttc_threshold_s: f64,
    /// Intervene when the bumper-to-bumper gap drops below this, metres.
    pub min_gap_m: f64,
    /// Emergency braking strength, m/s² (positive number).
    pub brake_mps2: f64,
}

impl Default for SafetyMonitorConfig {
    /// AEB-like defaults: intervene below 2.5 s TTC or 2 m gap, brake with
    /// 8 m/s². The TTC threshold is far above anything a healthy platoon
    /// produces (normal closing speeds at the 5 m design gap give TTC well
    /// over 10 s) but catches an attack-induced closure early enough to
    /// stop within the gap.
    fn default() -> Self {
        SafetyMonitorConfig {
            ttc_threshold_s: 2.5,
            min_gap_m: 2.0,
            brake_mps2: 8.0,
        }
    }
}

/// What the monitor decided for one control step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MonitorDecision {
    /// No hazard: the controller's command passes through.
    Pass,
    /// Hazard detected: override with emergency braking at the contained
    /// deceleration (m/s², negative).
    EmergencyBrake(f64),
}

/// A per-vehicle safety monitor instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyMonitor {
    config: SafetyMonitorConfig,
    interventions: u64,
    /// Whether the monitor is currently latched into emergency braking
    /// (hysteresis: it releases only when the hazard has cleared with
    /// margin, preventing brake/release chatter).
    latched: bool,
}

impl SafetyMonitor {
    /// Creates a monitor.
    pub fn new(config: SafetyMonitorConfig) -> Self {
        SafetyMonitor {
            config,
            interventions: 0,
            latched: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SafetyMonitorConfig {
        &self.config
    }

    /// Number of control steps in which the monitor overrode the
    /// controller.
    pub fn interventions(&self) -> u64 {
        self.interventions
    }

    /// Evaluates one control step. `radar` is `None` on a free road.
    pub fn check(&mut self, radar: Option<&RadarReading>) -> MonitorDecision {
        let Some(radar) = radar else {
            self.latched = false;
            return MonitorDecision::Pass;
        };
        let closing = radar.closing_speed_mps;
        let ttc = if closing > 1e-6 {
            radar.gap_m / closing
        } else {
            f64::INFINITY
        };
        let hazard = ttc < self.config.ttc_threshold_s || radar.gap_m < self.config.min_gap_m;
        // Release criterion (with margin) for a latched monitor.
        let clear =
            ttc > self.config.ttc_threshold_s * 1.5 && radar.gap_m > self.config.min_gap_m * 1.5;
        if hazard || (self.latched && !clear) {
            self.latched = true;
            self.interventions += 1;
            MonitorDecision::EmergencyBrake(-self.config.brake_mps2)
        } else {
            self.latched = false;
            MonitorDecision::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radar(gap: f64, closing: f64) -> RadarReading {
        RadarReading {
            gap_m: gap,
            closing_speed_mps: closing,
        }
    }

    #[test]
    fn passes_when_safe() {
        let mut m = SafetyMonitor::new(SafetyMonitorConfig::default());
        assert_eq!(m.check(Some(&radar(20.0, 0.0))), MonitorDecision::Pass);
        assert_eq!(m.check(Some(&radar(20.0, 1.0))), MonitorDecision::Pass); // TTC 20 s
        assert_eq!(m.check(None), MonitorDecision::Pass);
        assert_eq!(m.interventions(), 0);
    }

    #[test]
    fn brakes_on_low_ttc() {
        let mut m = SafetyMonitor::new(SafetyMonitorConfig::default());
        // 5 m gap closing at 4 m/s => TTC 1.25 s < 2.5 s.
        assert_eq!(
            m.check(Some(&radar(5.0, 4.0))),
            MonitorDecision::EmergencyBrake(-8.0)
        );
        assert_eq!(m.interventions(), 1);
    }

    #[test]
    fn brakes_on_tiny_gap_even_without_closing() {
        let mut m = SafetyMonitor::new(SafetyMonitorConfig::default());
        assert_eq!(
            m.check(Some(&radar(1.0, -0.5))),
            MonitorDecision::EmergencyBrake(-8.0)
        );
    }

    #[test]
    fn opening_gap_is_safe() {
        let mut m = SafetyMonitor::new(SafetyMonitorConfig::default());
        // Negative closing speed: leader pulling away, TTC infinite.
        assert_eq!(m.check(Some(&radar(5.0, -2.0))), MonitorDecision::Pass);
    }

    #[test]
    fn latched_until_clear_with_margin() {
        let mut m = SafetyMonitor::new(SafetyMonitorConfig::default());
        assert!(matches!(
            m.check(Some(&radar(5.0, 4.0))),
            MonitorDecision::EmergencyBrake(_)
        ));
        // Hazard nominally over (TTC = 3 s > 2.5) but not by the 1.5x
        // margin: stay latched.
        assert!(matches!(
            m.check(Some(&radar(6.0, 2.0))),
            MonitorDecision::EmergencyBrake(_)
        ));
        // Fully clear: release.
        assert_eq!(m.check(Some(&radar(10.0, 0.1))), MonitorDecision::Pass);
        // Interventions counted both latched steps.
        assert_eq!(m.interventions(), 2);
    }

    #[test]
    fn losing_the_radar_target_releases_the_latch() {
        let mut m = SafetyMonitor::new(SafetyMonitorConfig::default());
        m.check(Some(&radar(5.0, 4.0)));
        assert_eq!(m.check(None), MonitorDecision::Pass);
        assert_eq!(m.check(Some(&radar(20.0, 0.0))), MonitorDecision::Pass);
    }

    #[test]
    fn custom_brake_strength() {
        let cfg = SafetyMonitorConfig {
            brake_mps2: 6.0,
            ..SafetyMonitorConfig::default()
        };
        let mut m = SafetyMonitor::new(cfg);
        assert_eq!(
            m.check(Some(&radar(1.0, 5.0))),
            MonitorDecision::EmergencyBrake(-6.0)
        );
        assert_eq!(m.config().brake_mps2, 6.0);
    }
}
