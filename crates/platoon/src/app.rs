//! The per-vehicle platooning application.
//!
//! Each platoon member runs a [`PlatoonApp`]: it consumes decoded beacons,
//! remembers the latest state of its predecessor and of the platoon leader,
//! and produces an acceleration command every control step. **By default no
//! security or staleness mechanisms are active** — exactly like the Veins
//! communication model evaluated in the paper (§III-C), the last received
//! value is trusted indefinitely; that property is what the delay and DoS
//! attacks exploit. An optional staleness failsafe
//! ([`PlatoonApp::follower_with_failsafe`]) lets protected systems be
//! evaluated too.

use serde::{Deserialize, Serialize};

use comfase_des::time::{SimDuration, SimTime};

use crate::beacon::PlatoonBeacon;
use crate::controller::{
    ControllerInput, ControllerKind, EgoState, LongitudinalController, RadarReading, RadioData,
};
use crate::maneuver::{LeaderControl, Maneuver};

/// Application statistics for one vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppStats {
    /// Beacons generated.
    pub beacons_sent: u64,
    /// Beacons received and accepted (from leader or predecessor).
    pub beacons_used: u64,
    /// Beacons received from other platoon members (ignored).
    pub beacons_ignored: u64,
    /// Control steps executed in the degraded (radar-only) fallback mode
    /// of the staleness failsafe.
    pub degraded_steps: u64,
}

/// Role of the vehicle in the platoon.
#[derive(Clone)]
enum Role {
    Leader {
        maneuver: Box<dyn Maneuver>,
        control: LeaderControl,
    },
    Follower {
        controller: Box<dyn LongitudinalController>,
        leader: u32,
        predecessor: u32,
        last_leader: Option<PlatoonBeacon>,
        last_pred: Option<PlatoonBeacon>,
        /// Optional fault-handling mechanism: V2V data older than this is
        /// not trusted; the stale source is replaced with radar-derived
        /// estimates (per source, so a follower with a silenced
        /// predecessor still uses fresh leader data). `None` reproduces
        /// the paper's unprotected system.
        staleness_timeout: Option<SimDuration>,
        /// Control steps in which at least one source was substituted.
        degraded_steps: u64,
    },
}

impl std::fmt::Debug for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Leader { .. } => f.write_str("Leader"),
            Role::Follower {
                leader,
                predecessor,
                ..
            } => {
                write!(
                    f,
                    "Follower {{ leader: {leader}, predecessor: {predecessor} }}"
                )
            }
        }
    }
}

/// The platooning application of one vehicle.
///
/// `PlatoonApp` is `Clone`: a clone snapshots the role (including controller
/// state and beacon knowledge), sequence counter, and statistics, so a
/// forked run continues with identical control behaviour.
#[derive(Debug, Clone)]
pub struct PlatoonApp {
    vehicle: u32,
    role: Role,
    seq: u32,
    stats: AppStats,
}

impl PlatoonApp {
    /// Creates the leader application driving the given maneuver.
    pub fn leader(vehicle: u32, maneuver: Box<dyn Maneuver>) -> Self {
        PlatoonApp {
            vehicle,
            role: Role::Leader {
                maneuver,
                control: LeaderControl::default(),
            },
            seq: 0,
            stats: AppStats::default(),
        }
    }

    /// Creates a follower application with the given controller.
    pub fn follower(vehicle: u32, leader: u32, predecessor: u32, kind: ControllerKind) -> Self {
        Self::follower_with_failsafe(vehicle, leader, predecessor, kind, None)
    }

    /// Creates a follower that additionally runs a **staleness failsafe**:
    /// a V2V source (predecessor or leader) whose newest beacon is older
    /// than `staleness_timeout` is not trusted; its values are replaced by
    /// radar-derived estimates with zero acceleration feedforward. This is
    /// a fault/intrusion-handling mechanism of the kind the paper's target
    /// system deliberately lacks (§III-C), provided so that protected
    /// systems can be evaluated too.
    pub fn follower_with_failsafe(
        vehicle: u32,
        leader: u32,
        predecessor: u32,
        kind: ControllerKind,
        staleness_timeout: Option<SimDuration>,
    ) -> Self {
        PlatoonApp {
            vehicle,
            role: Role::Follower {
                controller: kind.build(),
                leader,
                predecessor,
                last_leader: None,
                last_pred: None,
                staleness_timeout,
                degraded_steps: 0,
            },
            seq: 0,
            stats: AppStats::default(),
        }
    }

    /// This vehicle's id.
    pub fn vehicle(&self) -> u32 {
        self.vehicle
    }

    /// `true` for the platoon leader.
    pub fn is_leader(&self) -> bool {
        matches!(self.role, Role::Leader { .. })
    }

    /// Application statistics.
    pub fn stats(&self) -> AppStats {
        self.stats
    }

    /// Latest beacon believed to come from the leader (followers only).
    pub fn leader_knowledge(&self) -> Option<&PlatoonBeacon> {
        match &self.role {
            Role::Follower { last_leader, .. } => last_leader.as_ref(),
            Role::Leader { .. } => None,
        }
    }

    /// Latest beacon believed to come from the predecessor (followers only).
    pub fn predecessor_knowledge(&self) -> Option<&PlatoonBeacon> {
        match &self.role {
            Role::Follower { last_pred, .. } => last_pred.as_ref(),
            Role::Leader { .. } => None,
        }
    }

    /// Feeds a decoded beacon into the application.
    pub fn on_beacon(&mut self, beacon: PlatoonBeacon) {
        match &mut self.role {
            Role::Leader { .. } => {
                self.stats.beacons_ignored += 1;
            }
            Role::Follower {
                leader,
                predecessor,
                last_leader,
                last_pred,
                ..
            } => {
                let mut used = false;
                if beacon.vehicle == *leader {
                    *last_leader = Some(beacon);
                    used = true;
                }
                if beacon.vehicle == *predecessor {
                    *last_pred = Some(beacon);
                    used = true;
                }
                if used {
                    self.stats.beacons_used += 1;
                } else {
                    self.stats.beacons_ignored += 1;
                }
            }
        }
    }

    /// Computes the commanded acceleration for this control step.
    ///
    /// `radar` is the on-board gap measurement to the vehicle ahead; it is
    /// `None` when no vehicle is ahead (then a follower coasts on its last
    /// knowledge with a zero-gap-error input).
    pub fn control(
        &mut self,
        now: SimTime,
        ego: EgoState,
        radar: Option<RadarReading>,
        dt_s: f64,
    ) -> f64 {
        match &mut self.role {
            Role::Leader { maneuver, control } => {
                control.accel(maneuver.as_ref(), now, ego.speed_mps)
            }
            Role::Follower {
                controller,
                last_leader,
                last_pred,
                staleness_timeout,
                degraded_steps,
                ..
            } => {
                // With no beacons yet (simulation start) assume a settled
                // platoon: mirror own speed, zero acceleration.
                let pred = last_pred.as_ref();
                let lead = last_leader.as_ref();
                let radar = radar.unwrap_or(RadarReading {
                    gap_m: 5.0,
                    closing_speed_mps: 0.0,
                });
                // Per-source staleness failsafe: a stale source's values
                // are replaced by radar-derived estimates (predecessor
                // speed from the radar closing speed, zero acceleration
                // feedforward) instead of being trusted indefinitely.
                let is_stale = |sampled: Option<SimTime>| -> bool {
                    match (*staleness_timeout, sampled) {
                        (None, _) => false,
                        (Some(t), Some(s)) => now - s > t,
                        (Some(t), None) => now > SimTime::ZERO + t,
                    }
                };
                let pred_stale = is_stale(pred.map(|b| b.sampled));
                let lead_stale = is_stale(lead.map(|b| b.sampled));
                let radar_pred_speed = ego.speed_mps - radar.closing_speed_mps;
                let pred_speed = if pred_stale {
                    radar_pred_speed
                } else {
                    pred.map_or(ego.speed_mps, |b| b.speed_mps)
                };
                let radio = RadioData {
                    pred_speed_mps: pred_speed,
                    pred_accel_mps2: if pred_stale {
                        0.0
                    } else {
                        pred.map_or(0.0, |b| b.accel_mps2)
                    },
                    leader_speed_mps: if lead_stale {
                        pred_speed
                    } else {
                        lead.map_or(ego.speed_mps, |b| b.speed_mps)
                    },
                    leader_accel_mps2: if lead_stale {
                        0.0
                    } else {
                        lead.map_or(0.0, |b| b.accel_mps2)
                    },
                };
                if pred_stale || lead_stale {
                    *degraded_steps += 1;
                    self.stats.degraded_steps = *degraded_steps;
                }
                let input = ControllerInput {
                    ego,
                    radar,
                    radio,
                    dt_s,
                };
                controller.desired_accel(&input)
            }
        }
    }

    /// Produces the next beacon to broadcast.
    pub fn make_beacon(
        &mut self,
        now: SimTime,
        pos_m: f64,
        speed_mps: f64,
        accel_mps2: f64,
    ) -> PlatoonBeacon {
        self.seq = self.seq.wrapping_add(1);
        self.stats.beacons_sent += 1;
        PlatoonBeacon {
            vehicle: self.vehicle,
            pos_m,
            speed_mps,
            accel_mps2,
            sampled: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maneuver::ConstantSpeed;

    fn beacon(vehicle: u32, speed: f64, accel: f64) -> PlatoonBeacon {
        PlatoonBeacon {
            vehicle,
            pos_m: 0.0,
            speed_mps: speed,
            accel_mps2: accel,
            sampled: SimTime::ZERO,
        }
    }

    fn follower() -> PlatoonApp {
        PlatoonApp::follower(2, 1, 1, ControllerKind::PathCacc)
    }

    fn ego(speed: f64) -> EgoState {
        EgoState {
            speed_mps: speed,
            accel_mps2: 0.0,
        }
    }

    #[test]
    fn routes_beacons_by_sender() {
        let mut app = PlatoonApp::follower(3, 1, 2, ControllerKind::PathCacc);
        app.on_beacon(beacon(1, 27.0, 0.5));
        app.on_beacon(beacon(2, 26.0, -0.5));
        app.on_beacon(beacon(4, 25.0, 0.0)); // behind us: ignored
        assert_eq!(app.leader_knowledge().unwrap().speed_mps, 27.0);
        assert_eq!(app.predecessor_knowledge().unwrap().speed_mps, 26.0);
        assert_eq!(app.stats().beacons_used, 2);
        assert_eq!(app.stats().beacons_ignored, 1);
    }

    #[test]
    fn leader_and_predecessor_can_be_same_vehicle() {
        let mut app = follower(); // vehicle 2: leader == predecessor == 1
        app.on_beacon(beacon(1, 27.0, 1.0));
        assert_eq!(app.leader_knowledge().unwrap().accel_mps2, 1.0);
        assert_eq!(app.predecessor_knowledge().unwrap().accel_mps2, 1.0);
        assert_eq!(app.stats().beacons_used, 1);
    }

    #[test]
    fn follower_without_beacons_holds_steady() {
        let mut app = follower();
        let a = app.control(
            SimTime::ZERO,
            ego(27.78),
            Some(RadarReading {
                gap_m: 5.0,
                closing_speed_mps: 0.0,
            }),
            0.01,
        );
        assert!(a.abs() < 1e-9, "settled platoon stays settled: {a}");
    }

    #[test]
    fn follower_uses_last_beacon_forever() {
        // The "no security mechanisms" property: knowledge never expires.
        let mut app = follower();
        app.on_beacon(beacon(1, 27.78, 1.5));
        let a = app.control(
            SimTime::from_secs(50), // 50 s later, no newer beacon
            ego(27.78),
            Some(RadarReading {
                gap_m: 5.0,
                closing_speed_mps: 0.0,
            }),
            0.01,
        );
        assert!(
            (a - 1.5).abs() < 1e-9,
            "stale feedforward still applied: {a}"
        );
    }

    #[test]
    fn staleness_failsafe_ignores_stale_feedforward() {
        let mut app = PlatoonApp::follower_with_failsafe(
            2,
            1,
            1,
            ControllerKind::PathCacc,
            Some(SimDuration::from_millis(500)),
        );
        app.on_beacon(beacon(1, 27.78, 1.5));
        // Fresh data: CACC applies the feedforward.
        let fresh = app.control(
            SimTime::from_millis(100),
            ego(27.78),
            Some(RadarReading {
                gap_m: 5.0,
                closing_speed_mps: 0.0,
            }),
            0.01,
        );
        assert!(fresh > 1.0, "fresh feedforward applied: {fresh}");
        assert_eq!(app.stats().degraded_steps, 0);
        // 2 s later with no newer beacon: the stale +1.5 m/s² is ignored
        // and the radar-only fallback takes over.
        let stale = app.control(
            SimTime::from_secs(2),
            ego(27.78),
            Some(RadarReading {
                gap_m: 5.0,
                closing_speed_mps: 0.0,
            }),
            0.01,
        );
        assert!(
            stale < 0.5,
            "stale feedforward must not be applied: {stale}"
        );
        assert_eq!(app.stats().degraded_steps, 1);
    }

    #[test]
    fn failsafe_grace_period_without_any_beacons() {
        let mut app = PlatoonApp::follower_with_failsafe(
            2,
            1,
            1,
            ControllerKind::PathCacc,
            Some(SimDuration::from_millis(500)),
        );
        // Within the grace period, the settled-platoon assumption holds.
        let a = app.control(
            SimTime::from_millis(100),
            ego(27.78),
            Some(RadarReading {
                gap_m: 5.0,
                closing_speed_mps: 0.0,
            }),
            0.01,
        );
        assert!(a.abs() < 1e-9);
        assert_eq!(app.stats().degraded_steps, 0);
        // Past it, with still no beacons at all: degrade.
        app.control(
            SimTime::from_secs(1),
            ego(27.78),
            Some(RadarReading {
                gap_m: 5.0,
                closing_speed_mps: 0.0,
            }),
            0.01,
        );
        assert_eq!(app.stats().degraded_steps, 1);
    }

    #[test]
    fn leader_tracks_maneuver() {
        let mut app = PlatoonApp::leader(1, Box::new(ConstantSpeed { speed_mps: 30.0 }));
        assert!(app.is_leader());
        let a = app.control(SimTime::ZERO, ego(25.0), None, 0.01);
        assert!(a > 0.0);
        let a = app.control(SimTime::ZERO, ego(30.0), None, 0.01);
        assert_eq!(a, 0.0);
    }

    #[test]
    fn leader_ignores_beacons() {
        let mut app = PlatoonApp::leader(1, Box::new(ConstantSpeed { speed_mps: 30.0 }));
        app.on_beacon(beacon(2, 10.0, -5.0));
        assert_eq!(app.stats().beacons_ignored, 1);
        assert!(app.leader_knowledge().is_none());
    }

    #[test]
    fn beacons_carry_current_state() {
        let mut app = follower();
        let b = app.make_beacon(SimTime::from_secs(3), 120.0, 26.5, -0.7);
        assert_eq!(b.vehicle, 2);
        assert_eq!(b.pos_m, 120.0);
        assert_eq!(b.speed_mps, 26.5);
        assert_eq!(b.accel_mps2, -0.7);
        assert_eq!(b.sampled, SimTime::from_secs(3));
        assert_eq!(app.stats().beacons_sent, 1);
    }
}
